package decoder

import (
	"testing"

	"repro/internal/semiring"
)

// The streaming interface must reproduce the batch decoder exactly.
func TestStreamMatchesBatch(t *testing.T) {
	f := getFixture(t, 42)
	for _, pre := range []bool{false, true} {
		d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: pre})
		if err != nil {
			t.Fatal(err)
		}
		for i, sc := range f.scores {
			batch := d.Decode(sc)
			d.ResetMemo() // same memo state as the batch run saw
			s := d.NewStream()
			for _, frame := range sc {
				if err := s.Push(frame); err != nil {
					t.Fatal(err)
				}
			}
			got := s.Finish()
			d.ResetMemo()
			if len(got.Words) != len(batch.Words) {
				t.Fatalf("pre=%v utt %d: stream %v vs batch %v", pre, i, got.Words, batch.Words)
			}
			for j := range got.Words {
				if got.Words[j] != batch.Words[j] {
					t.Fatalf("pre=%v utt %d word %d differs", pre, i, j)
				}
			}
			if !semiring.ApproxEqual(got.Cost, batch.Cost, 1e-4) {
				t.Errorf("pre=%v utt %d: cost %v vs %v", pre, i, got.Cost, batch.Cost)
			}
			if got.Stats.Frames != batch.Stats.Frames {
				t.Errorf("frame counts differ: %d vs %d", got.Stats.Frames, batch.Stats.Frames)
			}
		}
	}
}

func TestStreamPartialGrows(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := d.NewStream()
	sc := f.scores[0]
	var lens []int
	for i, frame := range sc {
		if err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
		if i%20 == 19 {
			lens = append(lens, len(s.Partial()))
		}
	}
	final := s.Finish()
	if len(lens) >= 2 && lens[len(lens)-1] < lens[0] {
		t.Errorf("partial hypotheses shrank over time: %v", lens)
	}
	if len(final.Words) == 0 {
		t.Error("empty final result")
	}
}

func TestStreamEmptyFrameRejected(t *testing.T) {
	f := getFixture(t, 42)
	d, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	s := d.NewStream()
	if err := s.Push(nil); err == nil {
		t.Error("expected error for empty frame")
	}
}

func TestStreamSurvivesSearchDeath(t *testing.T) {
	f := getFixture(t, 42)
	// An absurdly tight beam kills the search mid-utterance; the stream
	// must still return the best partial result rather than panic.
	d, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Beam: 0.0001, MaxActive: 1})
	s := d.NewStream()
	for _, frame := range f.scores[0] {
		if err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	r := s.Finish()
	if r == nil {
		t.Fatal("nil result after search death")
	}
}

func TestNBestOrderedAndDeduplicated(t *testing.T) {
	f := getFixture(t, 42)
	tp, err := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		list := tp.NBest(sc, 5)
		if len(list) == 0 {
			t.Fatalf("utt %d: empty N-best", i)
		}
		for j := 1; j < len(list); j++ {
			if list[j].Cost < list[j-1].Cost {
				t.Fatalf("utt %d: N-best not sorted at %d", i, j)
			}
			if equalHyp(list[j].Words, list[j-1].Words) {
				t.Fatalf("utt %d: duplicate hypothesis in N-best", i)
			}
		}
		// The 1-best of NBest must equal Decode's result.
		d := tp.Decode(sc)
		if !equalHyp(d.Words, list[0].Words) {
			t.Fatalf("utt %d: Decode != NBest[0]", i)
		}
	}
}

func equalHyp(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
