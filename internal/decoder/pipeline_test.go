package decoder

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/acoustic"
	"repro/internal/task"
)

// comparePipelineResults asserts two results are byte-identical under the
// deterministic search view.
func comparePipelineResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Errorf("%s cost: pipelined %v, sync %v", label, got.Cost, want.Cost)
	}
	if got.ReachedFinal != want.ReachedFinal {
		t.Errorf("%s finality: pipelined %v, sync %v", label, got.ReachedFinal, want.ReachedFinal)
	}
	if !equalInt32s(got.Words, want.Words) {
		t.Errorf("%s words: pipelined %v, sync %v", label, got.Words, want.Words)
	}
	if !equalInt32s(got.WordEnds, want.WordEnds) {
		t.Errorf("%s word ends: pipelined %v, sync %v", label, got.WordEnds, want.WordEnds)
	}
	if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
		t.Errorf("%s stats: pipelined %+v, sync %+v", label, gs, ws)
	}
}

// TestDifferentialPipelinedVsSynchronous is the pipelined-vs-synchronous
// oracle: across seeded tasks, every search configuration the differential
// harness sweeps (including rescue over a poisoned frame), and several
// lookahead depths, a Pipeline decode must match the synchronous path —
// score everything with ScoreUtterance, then Decode — byte-for-byte:
// hypotheses, word end frames, cost bits, finality, search statistics, and
// the entire per-frame token frontier captured through the frameHook seam.
func TestDifferentialPipelinedVsSynchronous(t *testing.T) {
	seeds := []int64{221, 222, 223}
	lookaheads := []int{1, 3, 8}
	total := 0
	for _, seed := range seeds {
		tk, err := task.Build(task.Spec{
			Name:           fmt.Sprintf("pipe-diff-%d", seed),
			Vocab:          24,
			Phones:         10,
			TrainSentences: 160,
			TestUtterances: 1,
			LMMinCount:     2,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		frames := tk.Test[0].Frames
		for _, tc := range diffConfigs {
			for _, k := range lookaheads {
				total++
				t.Run(fmt.Sprintf("seed%d/%s/k%d", seed, tc.name, k), func(t *testing.T) {
					in := frames
					if tc.cfg.RescueWidenings > 0 && len(in) > 2 {
						// Poison one FEATURE frame: the scorer turns it into an
						// all-NaN score row on both paths, so the rescue and
						// unsearchable-frame-skip machinery runs pipelined too.
						in = poisonFrame(in, len(in)/2)
					}
					dSync, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg := tc.cfg
					cfg.Lookahead = k
					dPipe, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, cfg)
					if err != nil {
						t.Fatal(err)
					}
					p, err := NewPipeline(dPipe, tk.Scorer)
					if err != nil {
						t.Fatal(err)
					}
					defer p.Close()
					syncSnaps := captureFrames(dSync)
					pipeSnaps := captureFrames(dPipe)

					want := dSync.Decode(tk.Scorer.ScoreUtterance(in))
					got := p.Decode(in)

					comparePipelineResults(t, "decode", got, want)
					compareSnaps(t, *pipeSnaps, *syncSnaps)
				})
			}
		}
	}
	if total < 50 {
		t.Fatalf("pipeline differential sweep shrank to %d cases; keep it at 50+", total)
	}
}

// TestDifferentialPipelineScorers runs the pipelined-vs-synchronous oracle
// over the dense scorers — the configurations the pipeline exists for. The
// RNN case is the sharp one: its recurrence must carry across window
// boundaries bitwise (window.go), including a lookahead larger than the
// whole utterance (one window covers everything).
func TestDifferentialPipelineScorers(t *testing.T) {
	for _, kind := range []task.ScorerKind{task.ScorerDNN, task.ScorerRNN} {
		tk, err := task.Build(task.Spec{
			Name:           fmt.Sprintf("pipe-%s", kind),
			Vocab:          24,
			Phones:         10,
			TrainSentences: 160,
			TestUtterances: 2,
			LMMinCount:     2,
			Seed:           227,
			Scorer:         kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 4, 1000} {
			for _, cfg := range []Config{{}, {PreemptivePruning: true}} {
				t.Run(fmt.Sprintf("%s/k%d/preemptive=%v", kind, k, cfg.PreemptivePruning), func(t *testing.T) {
					for i, u := range tk.Test {
						dSync, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, cfg)
						if err != nil {
							t.Fatal(err)
						}
						pcfg := cfg
						pcfg.Lookahead = k
						dPipe, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, pcfg)
						if err != nil {
							t.Fatal(err)
						}
						p, err := NewPipeline(dPipe, tk.Scorer)
						if err != nil {
							t.Fatal(err)
						}
						want := dSync.Decode(tk.Scorer.ScoreUtterance(u.Frames))
						got := p.Decode(u.Frames)
						p.Close()
						comparePipelineResults(t, fmt.Sprintf("utt %d", i), got, want)
					}
				})
			}
		}
	}
}

// TestPipelineStreamMatchesBatch: a PipeStream fed feature chunks of awkward
// sizes must finish with exactly the batch Pipeline result — including the
// recurrent RNN, whose window state must carry across Push boundaries.
func TestPipelineStreamMatchesBatch(t *testing.T) {
	tk, err := task.Build(task.Spec{
		Name:           "pipe-stream",
		Vocab:          24,
		Phones:         10,
		TrainSentences: 160,
		TestUtterances: 2,
		LMMinCount:     2,
		Seed:           228,
		Scorer:         task.ScorerRNN,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 7} {
		for _, chunk := range []int{1, 3, 10} {
			t.Run(fmt.Sprintf("k%d/chunk%d", k, chunk), func(t *testing.T) {
				for i, u := range tk.Test {
					cfg := Config{Lookahead: k}
					dBatch, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, cfg)
					if err != nil {
						t.Fatal(err)
					}
					pb, err := NewPipeline(dBatch, tk.Scorer)
					if err != nil {
						t.Fatal(err)
					}
					want := pb.Decode(u.Frames)
					pb.Close()

					dStream, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, cfg)
					if err != nil {
						t.Fatal(err)
					}
					ps, err := NewPipeline(dStream, tk.Scorer)
					if err != nil {
						t.Fatal(err)
					}
					s := ps.NewStream()
					for base := 0; base < len(u.Frames); base += chunk {
						end := base + chunk
						if end > len(u.Frames) {
							end = len(u.Frames)
						}
						if err := s.Push(u.Frames[base:end]); err != nil {
							t.Fatal(err)
						}
						s.Partial() // exercised for panics; values vary by chunking
					}
					got, serr := s.Finish()
					ps.Close()
					if serr != nil {
						t.Fatalf("utt %d: stream error %v", i, serr)
					}
					comparePipelineResults(t, fmt.Sprintf("utt %d", i), got, want)
				}
			})
		}
	}
}

// TestPipelineStreamLookaheadZero: at lookahead 0 the PipeStream must be
// byte-identical to the pre-pipeline solo streaming path — one synchronous
// ScoreUtterance call per pushed chunk. For the RNN the two differ from the
// batch path by design (the chunked solo path restarts the recurrence per
// chunk); this test pins that documented behaviour in place.
func TestPipelineStreamLookaheadZero(t *testing.T) {
	tk, err := task.Build(task.Spec{
		Name:           "pipe-k0",
		Vocab:          24,
		Phones:         10,
		TrainSentences: 160,
		TestUtterances: 1,
		LMMinCount:     2,
		Seed:           229,
		Scorer:         task.ScorerRNN,
	})
	if err != nil {
		t.Fatal(err)
	}
	u := tk.Test[0].Frames
	const chunk = 5

	dSolo, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	solo := dSolo.NewStream()
	for base := 0; base < len(u); base += chunk {
		end := base + chunk
		if end > len(u) {
			end = len(u)
		}
		for _, row := range tk.Scorer.ScoreUtterance(u[base:end]) {
			if err := solo.Push(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := solo.Finish()

	dPipe, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(dPipe, tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Lookahead() != 0 {
		t.Fatalf("Lookahead() = %d, want 0", p.Lookahead())
	}
	s := p.NewStream()
	for base := 0; base < len(u); base += chunk {
		end := base + chunk
		if end > len(u) {
			end = len(u)
		}
		if err := s.Push(u[base:end]); err != nil {
			t.Fatal(err)
		}
	}
	got, serr := s.Finish()
	if serr != nil {
		t.Fatal(serr)
	}
	comparePipelineResults(t, "k0 stream", got, want)
}

// TestPipelineCancel covers the cancellation drain: a decode cancelled
// mid-utterance returns ctx.Err() plus the best partial over the frames it
// actually searched — byte-identical to a synchronous decode of that prefix
// — and the Pipeline is immediately reusable for a full decode afterwards
// (nothing from the aborted utterance leaks through the ring).
func TestPipelineCancel(t *testing.T) {
	f := getFixture(t, 42)
	frames := f.tk.Test[0].Frames
	cfg := Config{PreemptivePruning: true, Lookahead: 4}
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(d, f.tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Already-cancelled context: zero frames searched, same as the sync path.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := p.DecodeContext(ctx, frames)
	if err != context.Canceled {
		t.Fatalf("pre-cancelled decode error = %v, want context.Canceled", err)
	}
	if res.Stats.Frames != 0 {
		t.Fatalf("pre-cancelled decode searched %d frames, want 0", res.Stats.Frames)
	}

	// Cancel racing the decode from another goroutine: whatever prefix was
	// searched must match a synchronous decode of exactly those frames.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go cancel2()
	res2, err2 := p.DecodeContext(ctx2, frames)
	if err2 != nil {
		if err2 != context.Canceled {
			t.Fatalf("racing cancel error = %v, want context.Canceled or nil", err2)
		}
		n := res2.Stats.Frames
		if n < 0 || n > len(frames) {
			t.Fatalf("cancelled decode reports %d frames of %d", n, len(frames))
		}
		dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		want := dRef.Decode(f.tk.Scorer.ScoreUtterance(frames[:n]))
		comparePipelineResults(t, fmt.Sprintf("cancelled@%d", n), res2, want)
	}

	// The pipeline must come back clean for a full utterance.
	dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	want := dRef.Decode(f.tk.Scorer.ScoreUtterance(frames))
	// Fresh pipeline decoder state comparison needs a cold memo on both
	// sides; the reused dPipe memo is warm, so compare a fresh pipeline.
	dFresh, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pFresh, err := NewPipeline(dFresh, f.tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer pFresh.Close()
	got := pFresh.Decode(frames)
	comparePipelineResults(t, "post-cancel decode", got, want)

	// The reused pipeline still produces the same hypothesis (memo warmth
	// changes probe statistics, never results).
	got2 := p.Decode(frames)
	if got2.Cost != want.Cost || !equalInt32s(got2.Words, want.Words) {
		t.Fatalf("reused pipeline after cancel: (%v, %v), want (%v, %v)",
			got2.Words, got2.Cost, want.Words, want.Cost)
	}
}

// panicWindowScorer wraps a WindowScorer and panics on the Nth ScoreWindow
// call — the producer-stage fault the pipeline must contain.
type panicWindowScorer struct {
	acoustic.WindowScorer
	after int
	calls int
}

func (p *panicWindowScorer) ScoreWindow(state acoustic.LaneState, frames, out [][]float32) {
	p.calls++
	if p.calls == p.after {
		panic("injected scorer fault")
	}
	p.WindowScorer.ScoreWindow(state, frames, out)
}

// TestPipelineScorerPanic: a scorer panic on the producer goroutine must
// surface as a decode error with the partial result over the frames scored
// before the fault — never a crashed process or a wedged ring — and the
// pipeline must recover for the next utterance.
func TestPipelineScorerPanic(t *testing.T) {
	f := getFixture(t, 42)
	frames := f.tk.Test[0].Frames
	ws, ok := f.tk.Scorer.(acoustic.WindowScorer)
	if !ok {
		t.Fatal("fixture scorer lacks window support")
	}
	faulty := &panicWindowScorer{WindowScorer: ws, after: 3}
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Lookahead: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(d, faulty)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	res, derr := p.DecodeContext(context.Background(), frames)
	if derr == nil {
		t.Fatal("decode over a panicking scorer returned nil error")
	}
	if res == nil {
		t.Fatal("decode over a panicking scorer returned nil result")
	}
	if res.Stats.Frames >= len(frames) {
		t.Fatalf("faulty decode claims %d frames searched of %d", res.Stats.Frames, len(frames))
	}

	// Next utterance on the same pipeline succeeds (the fault was consumed).
	res2, derr2 := p.DecodeContext(context.Background(), frames)
	if derr2 != nil {
		t.Fatalf("decode after recovered fault: %v", derr2)
	}
	dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := dRef.Decode(f.tk.Scorer.ScoreUtterance(frames))
	if res2.Cost != want.Cost || !equalInt32s(res2.Words, want.Words) {
		t.Fatalf("post-fault decode: (%v, %v), want (%v, %v)", res2.Words, res2.Cost, want.Words, want.Cost)
	}
}

// TestPipelineStreamPresetSwitch is the mid-utterance reconfiguration
// contract: a DegradedPreset installed between Push calls takes effect on
// the next pushed window — at a deterministic frame boundary — under both
// lookahead 0 and lookahead > 0, byte-identical to a plain Stream switched
// at the same frame. PipeStream.Push returns only after the search has
// consumed every frame pushed so far, which is what pins the boundary.
func TestPipelineStreamPresetSwitch(t *testing.T) {
	f := getFixture(t, 42)
	u := f.tk.Test[0].Frames
	scores := f.scores[0]
	half := len(u) / 2
	base := Config{}
	preset := base.DegradedPreset(5)

	// Reference: a plain Stream switched at the same boundary.
	dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, base)
	if err != nil {
		t.Fatal(err)
	}
	ref := dRef.NewStream()
	for i, row := range scores {
		if i == half {
			dRef.SetSearchPreset(preset)
		}
		if err := ref.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.Finish()

	// Control: no switch. The preset must actually change the search, or
	// this test would pass vacuously.
	dCtl, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, base)
	if err != nil {
		t.Fatal(err)
	}
	ctl := dCtl.NewStream()
	for _, row := range scores {
		if err := ctl.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	noSwitch := ctl.Finish()
	if want.Stats.Search() == noSwitch.Stats.Search() {
		t.Fatal("degraded preset did not change the search; pick a harsher level")
	}

	for _, k := range []int{0, 8} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			cfg := base
			cfg.Lookahead = k
			d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewPipeline(d, f.tk.Scorer)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			s := p.NewStream()
			if err := s.Push(u[:half]); err != nil {
				t.Fatal(err)
			}
			d.SetSearchPreset(preset)
			if err := s.Push(u[half:]); err != nil {
				t.Fatal(err)
			}
			got, serr := s.Finish()
			if serr != nil {
				t.Fatal(serr)
			}
			comparePipelineResults(t, fmt.Sprintf("preset switch k%d", k), got, want)
		})
	}
}

// TestDifferentialLanesLookaheadVsSolo extends the lane-vs-solo wall to
// score-ahead lane groups: utterances decoded through a lookahead lane group
// must match solo decodes byte-for-byte, and the group must actually
// amortize — strictly fewer scorer calls than frames.
func TestDifferentialLanesLookaheadVsSolo(t *testing.T) {
	tk, err := task.Build(task.Spec{
		Name:           "lane-look-diff",
		Vocab:          24,
		Phones:         10,
		TrainSentences: 160,
		TestUtterances: 5,
		LMMinCount:     2,
		Seed:           231,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range diffConfigs {
		if tc.cfg.RescueWidenings > 0 {
			continue // lanes ride the stream path, which has no rescue snapshots
		}
		for _, width := range []int{1, 3} {
			for _, k := range []int{2, 6} {
				t.Run(fmt.Sprintf("%s/width%d/k%d", tc.name, width, k), func(t *testing.T) {
					solo := make([]*Result, len(tk.Test))
					soloSnaps := make([]*[]frameSnap, len(tk.Test))
					for i, u := range tk.Test {
						d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
						if err != nil {
							t.Fatal(err)
						}
						soloSnaps[i] = captureFrames(d)
						solo[i] = d.Decode(tk.Scorer.ScoreUtterance(u.Frames))
					}

					g, err := NewLaneGroupLookahead(tk.Scorer, width, k)
					if err != nil {
						t.Fatal(err)
					}
					laneSnaps := make([]*[]frameSnap, len(tk.Test))
					laneRes := make([]*Result, len(tk.Test))
					lanes := map[*Lane]int{}
					next := 0
					for next < len(tk.Test) || len(lanes) > 0 {
						for next < len(tk.Test) && g.Active() < g.Width() {
							d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
							if err != nil {
								t.Fatal(err)
							}
							laneSnaps[next] = captureFrames(d)
							l, err := g.Join(d)
							if err != nil {
								t.Fatal(err)
							}
							l.Push(tk.Test[next].Frames)
							lanes[l] = next
							next++
						}
						g.Step()
						for l, utt := range lanes {
							if l.Pending() == 0 {
								laneRes[utt] = l.Finish()
								delete(lanes, l)
							}
						}
					}

					for i := range tk.Test {
						if laneRes[i] == nil {
							t.Fatalf("utt %d: no lane result", i)
						}
						comparePipelineResults(t, fmt.Sprintf("utt %d", i), laneRes[i], solo[i])
						compareSnaps(t, *laneSnaps[i], *soloSnaps[i])
					}
					st := g.Stats()
					if k > 1 && st.ScorerCalls >= st.Frames {
						t.Errorf("lookahead %d group made %d scorer calls over %d frames; expected amortization",
							k, st.ScorerCalls, st.Frames)
					}
				})
			}
		}
	}
}

// TestLaneLookaheadDropPending: cancelling a lookahead lane mid-window
// (frames scored ahead but not yet searched) must end the utterance at
// exactly the frames the search consumed — the discarded rows can never
// influence the result.
func TestLaneLookaheadDropPending(t *testing.T) {
	f := getFixture(t, 42)
	g, err := NewLaneGroupLookahead(f.tk.Scorer, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Join(d)
	if err != nil {
		t.Fatal(err)
	}
	u := f.tk.Test[0].Frames
	l.Push(u)
	// Step to the middle of a window: 6 frames consumed, ring holds 2 more.
	for i := 0; i < 6; i++ {
		if g.Step() == 0 {
			t.Fatal("group idle before drop")
		}
	}
	l.DropPending()
	consumed := l.Frames()
	if consumed != 6 {
		t.Fatalf("lane consumed %d frames, want 6", consumed)
	}
	got := l.Finish()

	dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := dRef.Decode(f.tk.Scorer.ScoreUtterance(u[:consumed]))
	comparePipelineResults(t, "dropped lane", got, want)
}

// TestAllocsPipelineDecode gates the pipelined batch entry point: a warm
// Pipeline decode — ring handoff, window scoring, search, Result
// construction — must average below one object per frame, the same bound as
// the synchronous Decode gate.
func TestAllocsPipelineDecode(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true, Lookahead: 8})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(d, f.tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	frames := f.tk.Test[0].Frames
	p.Decode(frames) // warm the scratch pool, ring, memo and window state

	allocs := testing.AllocsPerRun(10, func() { p.Decode(frames) })
	perFrame := allocs / float64(len(frames))
	if perFrame > 1 {
		t.Errorf("pipelined Decode allocates %.2f objects/frame (%.0f per %d-frame utterance), want <= 1",
			perFrame, allocs, len(frames))
	}
}

// TestAllocsPipeStreamPush gates the pipelined incremental path: a full
// PipeStream lifecycle must stay under two objects per frame — the Stream
// gate's bound, with the scoring stage now included in the measurement.
func TestAllocsPipeStreamPush(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Lookahead: 6})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(d, f.tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	frames := f.tk.Test[0].Frames
	run := func() {
		s := p.NewStream()
		for base := 0; base < len(frames); base += 4 {
			end := base + 4
			if end > len(frames) {
				end = len(frames)
			}
			_ = s.Push(frames[base:end])
		}
		s.Finish()
	}
	run() // warm

	allocs := testing.AllocsPerRun(10, run)
	perFrame := allocs / float64(len(frames))
	if perFrame > 2 {
		t.Errorf("pipelined stream lifecycle allocates %.2f objects/frame (%.0f per %d-frame utterance), want <= 2",
			perFrame, allocs, len(frames))
	}
}

// TestAllocsLaneStepLookahead extends the lane 0-allocation gate to
// score-ahead groups: a warm join/push/step-to-drain/leave cycle with window
// scoring must allocate nothing.
func TestAllocsLaneStepLookahead(t *testing.T) {
	f := getFixture(t, 42)
	const width = 4
	g, err := NewLaneGroupLookahead(f.tk.Scorer, width, 5)
	if err != nil {
		t.Fatal(err)
	}
	decs := make([]*OnTheFly, width)
	for i := range decs {
		if decs[i], err = NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true}); err != nil {
			t.Fatal(err)
		}
	}
	lanes := make([]*Lane, width)
	run := func() {
		for i := 0; i < width; i++ {
			l, err := g.Join(decs[i])
			if err != nil {
				t.Fatal(err)
			}
			l.Push(f.tk.Test[i].Frames)
			lanes[i] = l
		}
		for g.Step() > 0 {
		}
		for _, l := range lanes {
			l.Leave()
		}
	}
	run() // warm

	allocs := testing.AllocsPerRun(10, run)
	if allocs > 0 {
		t.Errorf("steady-state lookahead lane cycle allocates %.1f objects, want 0", allocs)
	}
}

// FuzzPipelineLookahead fuzzes the pipelined-vs-synchronous equivalence over
// lookahead depth, search configuration, chunking and utterance choice: for
// any combination, the batch Pipeline must match the synchronous decode and
// the PipeStream must match a solo Stream fed the same rows.
func FuzzPipelineLookahead(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(3), uint8(0))
	f.Add(uint8(4), uint8(1), uint8(1), uint8(1))
	f.Add(uint8(8), uint8(6), uint8(7), uint8(2))
	f.Add(uint8(12), uint8(3), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, kRaw, cfgRaw, chunkRaw, uttRaw uint8) {
		fx := getFixture(t, 42)
		k := 1 + int(kRaw)%12
		tc := diffConfigs[int(cfgRaw)%len(diffConfigs)]
		utt := int(uttRaw) % len(fx.tk.Test)
		chunk := 1 + int(chunkRaw)%9
		frames := fx.tk.Test[utt].Frames
		scores := fx.scores[utt]

		// Batch: pipelined vs synchronous (rescue configs included — both
		// sides run the same widening machinery).
		dSync, err := NewOnTheFly(fx.tk.AM.G, fx.tk.LMGraph.G, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := dSync.Decode(scores)
		cfg := tc.cfg
		cfg.Lookahead = k
		dPipe, err := NewOnTheFly(fx.tk.AM.G, fx.tk.LMGraph.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPipeline(dPipe, fx.tk.Scorer)
		if err != nil {
			t.Fatal(err)
		}
		got := p.Decode(frames)
		p.Close()
		comparePipelineResults(t, "batch", got, want)

		// Stream: pipelined chunks vs a solo stream fed the same rows. Both
		// sides get a cold decoder — memo warmth changes probe statistics.
		dSolo, err := NewOnTheFly(fx.tk.AM.G, fx.tk.LMGraph.G, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		solo := dSolo.NewStream()
		for _, row := range scores {
			if err := solo.Push(row); err != nil {
				t.Fatal(err)
			}
		}
		wantS := solo.Finish()
		dPipe2, err := NewOnTheFly(fx.tk.AM.G, fx.tk.LMGraph.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := NewPipeline(dPipe2, fx.tk.Scorer)
		if err != nil {
			t.Fatal(err)
		}
		s := p2.NewStream()
		for base := 0; base < len(frames); base += chunk {
			end := base + chunk
			if end > len(frames) {
				end = len(frames)
			}
			if err := s.Push(frames[base:end]); err != nil {
				t.Fatal(err)
			}
		}
		gotS, serr := s.Finish()
		p2.Close()
		if serr != nil {
			t.Fatal(serr)
		}
		comparePipelineResults(t, "stream", gotS, wantS)
	})
}
