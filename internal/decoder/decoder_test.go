package decoder

import (
	"math/rand"
	"testing"

	"repro/internal/metrics"
	"repro/internal/semiring"
	"repro/internal/task"
	"repro/internal/wfst"
)

// fixture builds a small task plus its offline composition once per test
// binary; decoders are cheap to construct on top.
type fixture struct {
	tk       *task.Task
	composed *wfst.WFST
	scores   [][][]float32 // per test utterance
}

var fixtures = map[int64]*fixture{}

func getFixture(t testing.TB, seed int64) *fixture {
	t.Helper()
	if f, ok := fixtures[seed]; ok {
		return f
	}
	tk, err := task.Build(task.Spec{
		Name:           "dec-test",
		Vocab:          30,
		Phones:         12,
		TrainSentences: 250,
		TestUtterances: 6,
		LMMinCount:     2, // force back-off traffic
		Seed:           seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	composed, err := wfst.Compose(tk.AM.G, tk.LMGraph.G, wfst.ComposeOptions{MaxStates: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{tk: tk, composed: composed}
	for _, u := range tk.Test {
		f.scores = append(f.scores, tk.Scorer.ScoreUtterance(u.Frames))
	}
	fixtures[seed] = f
	return f
}

// TestEquivalenceOracle is the package's core property: the on-the-fly
// decoder and the fully-composed decoder search the same space and must
// return the same hypothesis at the same cost (up to float accumulation
// order). This is the paper's claim that on-the-fly composition changes the
// memory system, not the result.
func TestEquivalenceOracle(t *testing.T) {
	f := getFixture(t, 42)
	cfg := Config{}
	dc, err := NewComposed(f.composed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	do, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		rc := dc.Decode(sc)
		ro := do.Decode(sc)
		if len(rc.Words) != len(ro.Words) {
			t.Fatalf("utt %d: composed %v vs on-the-fly %v", i, rc.Words, ro.Words)
		}
		for j := range rc.Words {
			if rc.Words[j] != ro.Words[j] {
				t.Fatalf("utt %d word %d: composed %v vs on-the-fly %v", i, j, rc.Words, ro.Words)
			}
		}
		if !semiring.ApproxEqual(rc.Cost, ro.Cost, 0.05) {
			t.Errorf("utt %d: costs %v vs %v", i, rc.Cost, ro.Cost)
		}
		if rc.ReachedFinal != ro.ReachedFinal {
			t.Errorf("utt %d: finality %v vs %v", i, rc.ReachedFinal, ro.ReachedFinal)
		}
	}
}

// All three LM lookup strategies must agree on the result; they differ only
// in probe counts (the paper's 10x / 3x / 1.18x slowdown story).
func TestLookupKindsAgree(t *testing.T) {
	f := getFixture(t, 42)
	var results []*Result
	var probes []int64
	for _, kind := range []LookupKind{LookupLinear, LookupBinary, LookupMemo} {
		d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Lookup: kind})
		if err != nil {
			t.Fatal(err)
		}
		var totalProbes int64
		var last *Result
		for _, sc := range f.scores {
			last = d.Decode(sc)
			totalProbes += last.Stats.LMProbes
		}
		results = append(results, last)
		probes = append(probes, totalProbes)
	}
	for i := 1; i < len(results); i++ {
		if len(results[i].Words) != len(results[0].Words) {
			t.Fatalf("lookup kinds disagree: %v vs %v", results[0].Words, results[i].Words)
		}
		for j := range results[0].Words {
			if results[i].Words[j] != results[0].Words[j] {
				t.Fatalf("lookup kinds disagree at word %d", j)
			}
		}
	}
	// Linear must probe far more than binary; memo fewer than binary.
	if probes[0] <= probes[1] {
		t.Errorf("linear probes %d <= binary probes %d", probes[0], probes[1])
	}
	if probes[2] >= probes[1] {
		t.Errorf("memo probes %d >= binary probes %d", probes[2], probes[1])
	}
}

func TestPreemptivePruningSafeAndActive(t *testing.T) {
	f := getFixture(t, 42)
	base, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	var pruned, fetches int64
	for i, sc := range f.scores {
		rb := base.Decode(sc)
		rp := pre.Decode(sc)
		if len(rb.Words) != len(rp.Words) {
			t.Fatalf("utt %d: pruning changed result: %v vs %v", i, rb.Words, rp.Words)
		}
		for j := range rb.Words {
			if rb.Words[j] != rp.Words[j] {
				t.Fatalf("utt %d: pruning changed word %d", i, j)
			}
		}
		if !semiring.ApproxEqual(rb.Cost, rp.Cost, 1e-3) {
			t.Errorf("utt %d: pruning changed cost %v vs %v", i, rb.Cost, rp.Cost)
		}
		pruned += rp.Stats.PreemptivePruned
		fetches += rp.Stats.LMFetches
	}
	if pruned == 0 {
		t.Error("preemptive pruning never fired (no back-off pressure in fixture?)")
	}
	t.Logf("preemptively pruned %d of %d LM fetches (%.1f%%)",
		pruned, fetches, 100*float64(pruned)/float64(fetches))
}

func TestDecodeAccuracy(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var acc metrics.WERAccumulator
	for i, sc := range f.scores {
		r := d.Decode(sc)
		acc.Add(f.tk.Test[i].Words, r.Words)
	}
	if wer := acc.WER(); wer > 40 {
		t.Errorf("WER %.1f%% too high — decoder or models broken (%s)", wer, acc.String())
	}
}

func TestCleanUtteranceDecodesExactly(t *testing.T) {
	tk, err := task.Build(task.Spec{
		Name:           "clean",
		Vocab:          20,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 1,
		NoiseStd:       0.25, // nearly clean frames
		SilenceProb:    0.0001,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	words := []int32{3, 7, 11, 2}
	frames := tk.SynthesizeFrames(rng, words)
	r := d.Decode(tk.Scorer.ScoreUtterance(frames))
	if len(r.Words) != len(words) {
		t.Fatalf("clean decode %v, want %v", r.Words, words)
	}
	for i := range words {
		if r.Words[i] != words[i] {
			t.Fatalf("clean decode %v, want %v", r.Words, words)
		}
	}
	if !r.ReachedFinal {
		t.Error("clean decode did not reach a final state")
	}
}

func TestBeamTightensSearch(t *testing.T) {
	f := getFixture(t, 42)
	wide, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Beam: 24})
	narrow, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Beam: 6})
	rw := wide.Decode(f.scores[0])
	rn := narrow.Decode(f.scores[0])
	if rn.Stats.TokensExpanded >= rw.Stats.TokensExpanded {
		t.Errorf("narrow beam expanded %d >= wide beam %d",
			rn.Stats.TokensExpanded, rw.Stats.TokensExpanded)
	}
	// A narrower beam can only do worse or equal on cost.
	if rn.Cost < rw.Cost-1e-3 {
		t.Errorf("narrow beam found better cost %v < %v", rn.Cost, rw.Cost)
	}
}

func TestMaxActiveCaps(t *testing.T) {
	f := getFixture(t, 42)
	d, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{MaxActive: 50})
	r := d.Decode(f.scores[0])
	perFrame := float64(r.Stats.TokensExpanded) / float64(r.Stats.Frames)
	if perFrame > 50 {
		t.Errorf("mean active tokens %.1f exceeds MaxActive 50", perFrame)
	}
}

func TestMemoWarmsAcrossUtterances(t *testing.T) {
	f := getFixture(t, 42)
	d, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	r1 := d.Decode(f.scores[0])
	r2 := d.Decode(f.scores[0]) // identical utterance: table is warm
	h1 := float64(r1.Stats.MemoHits) / float64(r1.Stats.MemoHits+r1.Stats.MemoMisses)
	h2 := float64(r2.Stats.MemoHits) / float64(r2.Stats.MemoHits+r2.Stats.MemoMisses)
	if h2 <= h1 {
		t.Errorf("memo hit rate did not improve: %.3f -> %.3f", h1, h2)
	}
	d.ResetMemo()
	r3 := d.Decode(f.scores[0])
	if r3.Stats.MemoMisses < r2.Stats.MemoMisses {
		t.Error("ResetMemo did not cool the table")
	}
}

func TestDecodeDeterministic(t *testing.T) {
	f := getFixture(t, 42)
	for _, pre := range []bool{false, true} {
		d1, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: pre})
		d2, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: pre})
		r1 := d1.Decode(f.scores[1])
		r2 := d2.Decode(f.scores[1])
		// Stats.Search excludes the allocation/GC counters, which are
		// process-global and legitimately differ between the two runs.
		if r1.Cost != r2.Cost || r1.Stats.Search() != r2.Stats.Search() {
			t.Errorf("pre=%v: nondeterministic decode: %+v vs %+v", pre, r1.Stats, r2.Stats)
		}
	}
}

func TestBackoffTraffic(t *testing.T) {
	f := getFixture(t, 42)
	d, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	r := d.Decode(f.scores[0])
	if r.Stats.LMFetches == 0 {
		t.Fatal("no LM fetches — no cross-word transitions taken")
	}
	if r.Stats.BackoffHops == 0 {
		t.Error("no back-off hops — pruned LM should force them")
	}
	if r.Stats.LatticeEntries == 0 {
		t.Error("no lattice entries written")
	}
}

func TestEmptyScores(t *testing.T) {
	f := getFixture(t, 42)
	d, _ := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	r := d.Decode(nil)
	if len(r.Words) != 0 {
		t.Errorf("empty utterance decoded to %v", r.Words)
	}
	if !r.ReachedFinal {
		t.Error("start state is final; empty decode should reach final")
	}
}

func TestNewDecoderErrors(t *testing.T) {
	f := getFixture(t, 42)
	empty := wfst.NewBuilder().MustBuild()
	if _, err := NewComposed(empty, Config{}); err == nil {
		t.Error("expected error for empty composed graph")
	}
	if _, err := NewOnTheFly(empty, f.tk.LMGraph.G, Config{}); err == nil {
		t.Error("expected error for empty AM")
	}
	unsorted := f.tk.AM.G // AM graphs are not input-sorted
	if _, err := NewOnTheFly(f.tk.AM.G, unsorted, Config{}); err == nil {
		t.Error("expected error for unsorted LM")
	}
}

// Word end-times must be present, within the utterance, and nondecreasing.
func TestWordEndTimes(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		r := d.Decode(sc)
		if len(r.WordEnds) != len(r.Words) {
			t.Fatalf("utt %d: %d end times for %d words", i, len(r.WordEnds), len(r.Words))
		}
		prev := int32(-1)
		for j, e := range r.WordEnds {
			if e < 0 || int(e) >= len(sc) {
				t.Fatalf("utt %d word %d: end frame %d outside utterance", i, j, e)
			}
			if e < prev {
				t.Fatalf("utt %d: end times not monotone: %v", i, r.WordEnds)
			}
			prev = e
		}
	}
	// Composed decoder produces the same timings (same search space).
	dc, err := NewComposed(f.composed, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		ro := d.Decode(sc)
		rc := dc.Decode(sc)
		if len(ro.WordEnds) != len(rc.WordEnds) {
			t.Fatalf("utt %d: timing count mismatch", i)
		}
		for j := range ro.WordEnds {
			if ro.WordEnds[j] != rc.WordEnds[j] {
				t.Fatalf("utt %d word %d: OTF end %d vs composed %d",
					i, j, ro.WordEnds[j], rc.WordEnds[j])
			}
		}
	}
}
