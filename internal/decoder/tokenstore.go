package decoder

import (
	"slices"
	"sync"

	"repro/internal/semiring"
)

// tokenStore is the reusable token frontier of the Viterbi hot path: an
// open-addressing hash table over flat parallel slices. It replaces the
// per-frame map[uint64]token the seed decoder allocated (and the sorted key
// slice it built to iterate deterministically) with storage that is recycled
// across frames and across utterances, so a steady-state decode performs no
// per-frame heap allocation at all.
//
// Layout: ctrl is the power-of-two probe table; a slot holds entryIndex+1
// (0 = empty). keys and toks are parallel arrays in *insertion order*, which
// is the store's iteration order. Insertion order is a pure function of the
// search (arc order is fixed, predecessor order is the previous frame's
// insertion order), so iteration is deterministic without any sorting — the
// determinism contract documented in docs/ARCHITECTURE.md.
//
// A tokenStore is not safe for concurrent use; each decode owns its stores
// via the scratch pool (see scratch), and each pool worker therefore works
// on a private set.
type tokenStore struct {
	ctrl []int32 // probe table: entry index + 1, 0 = empty; len is a power of two
	keys []uint64
	toks []token
}

// fibMul is the 64-bit Fibonacci-hashing multiplier (2^64 / golden ratio);
// the high table bits of key*fibMul spread the (AM,LM) state pairs evenly.
const fibMul = 0x9E3779B97F4A7C15

// minTableSize is the smallest probe table; big enough that tiny frontiers
// never rehash, small enough that clearing it between frames is free.
const minTableSize = 256

func newTokenStore() *tokenStore {
	return &tokenStore{ctrl: make([]int32, minTableSize)}
}

// len reports the number of live tokens.
func (s *tokenStore) len() int { return len(s.keys) }

// reset empties the store for reuse, retaining all capacity.
func (s *tokenStore) reset() {
	clear(s.ctrl)
	s.keys = s.keys[:0]
	s.toks = s.toks[:0]
}

// slotFor returns the home probe slot for key in the current table.
func (s *tokenStore) slotFor(key uint64) uint32 {
	return uint32((key*fibMul)>>32) & uint32(len(s.ctrl)-1)
}

// relax performs the tropical-semiring token update on the store: insert the
// token if its state pair is new, keep the better cost otherwise. It returns
// the entry index (stable until the next prune/reset) and whether the token
// was created or improved — the same contract as the retained map relax.
func (s *tokenStore) relax(key uint64, cost semiring.Weight, lat int32) (idx int32, created, improved bool) {
	mask := uint32(len(s.ctrl) - 1)
	slot := uint32((key*fibMul)>>32) & mask
	for {
		e := s.ctrl[slot]
		if e == 0 {
			if len(s.keys) >= len(s.ctrl)-len(s.ctrl)/4 {
				s.grow()
				return s.relax(key, cost, lat) // re-probe in the grown table
			}
			idx = int32(len(s.keys))
			s.keys = append(s.keys, key)
			s.toks = append(s.toks, token{cost, lat})
			s.ctrl[slot] = idx + 1
			return idx, true, true
		}
		if s.keys[e-1] == key {
			if cost < s.toks[e-1].cost {
				s.toks[e-1] = token{cost, lat}
				return e - 1, false, true
			}
			return e - 1, false, false
		}
		slot = (slot + 1) & mask
	}
}

// grow doubles the probe table and reindexes every live entry.
func (s *tokenStore) grow() {
	s.ctrl = make([]int32, 2*len(s.ctrl))
	s.reindex()
}

// reindex rebuilds the probe table (which must be zeroed) from the entry
// arrays — used after growth and after pruning compactions.
func (s *tokenStore) reindex() {
	mask := uint32(len(s.ctrl) - 1)
	for i, key := range s.keys {
		slot := uint32((key*fibMul)>>32) & mask
		for s.ctrl[slot] != 0 {
			slot = (slot + 1) & mask
		}
		s.ctrl[slot] = int32(i) + 1
	}
}

// copyFrom makes s an exact copy of o (entries, order, and probe layout),
// reusing s's storage. This is how rescue snapshots are taken and restored
// without allocating.
func (s *tokenStore) copyFrom(o *tokenStore) {
	s.keys = append(s.keys[:0], o.keys...)
	s.toks = append(s.toks[:0], o.toks...)
	if len(s.ctrl) != len(o.ctrl) {
		s.ctrl = make([]int32, len(o.ctrl))
	}
	copy(s.ctrl, o.ctrl)
}

// pruneEnt is one histogram-pruning sort record: cost-ordered with the token
// key as the deterministic tiebreaker, exactly as the retained map frontier
// sorts (decoder.go beamPrune).
type pruneEnt struct {
	c semiring.Weight
	k uint64
	i int32 // entry index in the store being pruned
}

// scratch is the per-decode working set: the three frontier stores (current,
// next, rescue snapshot), the reusable lattice arena, the epsilon-closure
// worklist, and the histogram-pruning sort buffers. Decodes borrow one from
// scratchPool and return it, so the whole set is recycled across utterances;
// a Stream owns one for its lifetime. Nothing in a scratch escapes into a
// Result (backtraces copy), which is what makes the recycling safe.
type scratch struct {
	cur, next, snap *tokenStore
	lat             lattice
	queue           []int32
	prune           []pruneEnt
	dead            []bool
}

var scratchPool = sync.Pool{New: func() any {
	return &scratch{
		cur:   newTokenStore(),
		next:  newTokenStore(),
		snap:  newTokenStore(),
		queue: make([]int32, 0, minTableSize),
	}
}}

func getScratch() *scratch   { return scratchPool.Get().(*scratch) }
func putScratch(sc *scratch) { scratchPool.Put(sc) }

// beamPrune removes tokens worse than best+beam from s, then applies the
// MaxActive histogram cap, compacting survivors in insertion order. It
// mirrors the retained map beamPrune exactly: the same survivor set, the
// same (cost, key) tiebreak for the histogram cap, the same returned
// threshold and cut count — only the storage differs.
func (sc *scratch) beamPrune(s *tokenStore, beam semiring.Weight, maxActive int) (semiring.Weight, int64) {
	if len(s.keys) == 0 {
		return semiring.Zero, 0
	}
	best := semiring.Zero
	for i := range s.toks {
		if s.toks[i].cost < best {
			best = s.toks[i].cost
		}
	}
	thr := best + beam
	var cut int64
	n := 0
	for i := range s.keys {
		// Keep unless strictly worse than the threshold — the exact map
		// predicate (`cost > thr` deletes), preserving non-finite parity.
		if s.toks[i].cost > thr {
			cut++
			continue
		}
		s.keys[n] = s.keys[i]
		s.toks[n] = s.toks[i]
		n++
	}
	changed := n != len(s.keys)
	s.keys = s.keys[:n]
	s.toks = s.toks[:n]

	if maxActive > 0 && n > maxActive {
		ents := sc.prune[:0]
		for i := range s.keys {
			ents = append(ents, pruneEnt{s.toks[i].cost, s.keys[i], int32(i)})
		}
		slices.SortFunc(ents, func(a, b pruneEnt) int {
			switch {
			case a.c < b.c:
				return -1
			case a.c > b.c:
				return 1
			case a.k < b.k:
				return -1
			case a.k > b.k:
				return 1
			}
			return 0
		})
		if cap(sc.dead) < n {
			sc.dead = make([]bool, n)
		} else {
			sc.dead = sc.dead[:n]
			clear(sc.dead)
		}
		for _, e := range ents[maxActive:] {
			sc.dead[e.i] = true
			cut++
		}
		thr = ents[maxActive-1].c
		m := 0
		for i := range s.keys {
			if sc.dead[i] {
				continue
			}
			s.keys[m] = s.keys[i]
			s.toks[m] = s.toks[i]
			m++
		}
		s.keys = s.keys[:m]
		s.toks = s.toks[:m]
		sc.prune = ents[:0]
		changed = true
	}

	if changed {
		clear(s.ctrl)
		s.reindex()
	}
	return thr, cut
}
