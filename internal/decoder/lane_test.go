package decoder

import (
	"testing"
)

// laneSolo decodes every fixture utterance solo on a fresh decoder each
// (mirroring the fresh-decoder-per-lane-join convention, so offset-memo
// statistics line up exactly).
func laneSolo(t *testing.T, f *fixture, cfg Config) []*Result {
	t.Helper()
	out := make([]*Result, len(f.scores))
	for i, scores := range f.scores {
		d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = d.Decode(scores)
	}
	return out
}

// compareLaneResult asserts byte-identical lane-vs-solo results.
func compareLaneResult(t *testing.T, utt int, got, want *Result) {
	t.Helper()
	if got == nil {
		t.Fatalf("utt %d: lane returned nil result", utt)
	}
	if got.Cost != want.Cost {
		t.Errorf("utt %d cost: lane %v, solo %v", utt, got.Cost, want.Cost)
	}
	if got.ReachedFinal != want.ReachedFinal {
		t.Errorf("utt %d finality: lane %v, solo %v", utt, got.ReachedFinal, want.ReachedFinal)
	}
	if !equalInt32s(got.Words, want.Words) {
		t.Errorf("utt %d words: lane %v, solo %v", utt, got.Words, want.Words)
	}
	if !equalInt32s(got.WordEnds, want.WordEnds) {
		t.Errorf("utt %d word ends: lane %v, solo %v", utt, got.WordEnds, want.WordEnds)
	}
	if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
		t.Errorf("utt %d stats: lane %+v, solo %+v", utt, gs, ws)
	}
}

// TestLaneGroupMatchesSolo decodes the fixture test set through a width-3
// lane group in admission waves and checks every result against a solo
// decode — words, ends, cost bits, finality and search statistics.
func TestLaneGroupMatchesSolo(t *testing.T) {
	f := getFixture(t, 42)
	cfg := Config{PreemptivePruning: true}
	want := laneSolo(t, f, cfg)

	g, err := NewLaneGroup(f.tk.Scorer, 3)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	lanes := map[*Lane]int{}
	for next < len(f.tk.Test) || len(lanes) > 0 {
		for next < len(f.tk.Test) && g.Active() < g.Width() {
			d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
			if err != nil {
				t.Fatal(err)
			}
			l, err := g.Join(d)
			if err != nil {
				t.Fatal(err)
			}
			l.Push(f.tk.Test[next].Frames)
			lanes[l] = next
			next++
		}
		g.Step()
		for l, utt := range lanes {
			if l.Pending() == 0 {
				compareLaneResult(t, utt, l.Finish(), want[utt])
				delete(lanes, l)
			}
		}
	}
	st := g.Stats()
	if st.Joins != int64(len(f.tk.Test)) || st.Drains != st.Joins {
		t.Errorf("join/drain accounting: %+v", st)
	}
	if active := g.Active(); active != 0 {
		t.Errorf("lanes still active after drain: %d", active)
	}
	if ratio := st.ScorerCallsPerFrame(); ratio >= 1 {
		t.Errorf("scorer calls/frame = %.3f, want < 1 with 3 lanes", ratio)
	}
}

// TestLaneGroupContinuousJoin proves mid-flight admission: an utterance
// joining while the group is half way through others still decodes
// byte-identically, and slots recycle (more utterances than width).
func TestLaneGroupContinuousJoin(t *testing.T) {
	f := getFixture(t, 42)
	cfg := Config{}
	want := laneSolo(t, f, cfg)

	g, err := NewLaneGroup(f.tk.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	newDec := func() *OnTheFly {
		d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	// Lane A starts alone and advances 5 frames before B joins mid-flight.
	a, _ := g.Join(newDec())
	a.Push(f.tk.Test[0].Frames)
	for i := 0; i < 5; i++ {
		g.Step()
	}
	b, _ := g.Join(newDec())
	b.Push(f.tk.Test[1].Frames)
	for g.Step() > 0 {
	}
	compareLaneResult(t, 0, a.Finish(), want[0])
	compareLaneResult(t, 1, b.Finish(), want[1])
	// The freed slots take two more utterances (recycled streams/states).
	c, _ := g.Join(newDec())
	c.Push(f.tk.Test[2].Frames)
	d2, _ := g.Join(newDec())
	d2.Push(f.tk.Test[3].Frames)
	compareLaneResult(t, 2, c.Finish(), want[2])
	compareLaneResult(t, 3, d2.Finish(), want[3])
}

// TestLaneGroupFull: admission past the width fails with ErrLanesFull, and
// a drain reopens the slot.
func TestLaneGroupFull(t *testing.T) {
	f := getFixture(t, 42)
	g, err := NewLaneGroup(f.tk.Scorer, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Join(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Join(d); err != ErrLanesFull {
		t.Fatalf("second join: got %v, want ErrLanesFull", err)
	}
	l.Leave()
	if _, err := g.Join(d); err != nil {
		t.Fatalf("join after leave: %v", err)
	}
}

// TestLaneGroupRejectsWidth: invalid widths and non-batchable scorers fail
// at construction.
func TestLaneGroupRejectsWidth(t *testing.T) {
	f := getFixture(t, 42)
	if _, err := NewLaneGroup(f.tk.Scorer, 0); err == nil {
		t.Fatal("width 0 accepted")
	}
	if _, err := NewLaneGroup(soloOnlyScorer{}, 2); err == nil {
		t.Fatal("non-batch scorer accepted")
	}
}

// soloOnlyScorer implements acoustic.Scorer but not BatchScorer.
type soloOnlyScorer struct{}

func (soloOnlyScorer) ScoreUtterance(frames [][]float32) [][]float32 { return nil }
func (soloOnlyScorer) FLOPsPerFrame() float64                        { return 0 }
func (soloOnlyScorer) Name() string                                  { return "solo-only" }

// TestLaneGroupEmptyUtterance: a lane finished without any frames matches a
// solo decode of zero frames (the initial-closure-only result).
func TestLaneGroupEmptyUtterance(t *testing.T) {
	f := getFixture(t, 42)
	g, err := NewLaneGroup(f.tk.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Join(d)
	if err != nil {
		t.Fatal(err)
	}
	got := l.Finish()
	dSolo, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	compareLaneResult(t, 0, got, dSolo.Decode(nil))
}

// evilOffsetCache returns a wildly out-of-range arc index, driving the
// decoder into an out-of-bounds read — the lane-level panic-isolation
// trigger (same class of fault the pool's fault tests inject).
type evilOffsetCache struct{}

func (evilOffsetCache) Get(key uint64) (int32, bool) { return 1 << 30, true }
func (evilOffsetCache) Put(key uint64, idx int32)    {}
func (evilOffsetCache) Reset()                       {}

// TestLaneGroupPanicIsolation: a panic inside one lane's frontier step
// marks only that lane failed; the other lane's result stays byte-identical
// to solo, and the failed slot is reusable after Leave/Finish.
func TestLaneGroupPanicIsolation(t *testing.T) {
	f := getFixture(t, 42)
	cfg := Config{}
	want := laneSolo(t, f, cfg)

	g, err := NewLaneGroup(f.tk.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	healthyDec, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	evilCfg := cfg
	evilCfg.OffsetCache = evilOffsetCache{}
	evilDec, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, evilCfg)
	if err != nil {
		t.Fatal(err)
	}
	healthy, _ := g.Join(healthyDec)
	healthy.Push(f.tk.Test[0].Frames)
	evil, _ := g.Join(evilDec)
	evil.Push(f.tk.Test[1].Frames)
	for g.Step() > 0 {
	}
	if evil.Err() == nil {
		t.Fatal("evil lane did not fail")
	}
	if res := evil.Finish(); res != nil {
		t.Fatalf("failed lane returned a result: %+v", res)
	}
	compareLaneResult(t, 0, healthy.Finish(), want[0])
	if g.Active() != 0 {
		t.Fatalf("slots leaked after failure: %d active", g.Active())
	}
	// The slot that hosted the panic joins cleanly again (fresh decoder, so
	// memo statistics match the solo baseline).
	freshDec, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, err := g.Join(freshDec)
	if err != nil {
		t.Fatal(err)
	}
	again.Push(f.tk.Test[1].Frames)
	compareLaneResult(t, 1, again.Finish(), want[1])
}
