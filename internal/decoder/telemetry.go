package decoder

import (
	"time"

	"repro/internal/telemetry"
)

// Telemetry is the decoder's instrument set: continuous observability for
// the quantities the paper evaluates once per experiment (offset-table hit
// rates, back-off walk lengths, pruned-vs-expanded hypotheses — Figs.
// 8–13). One Telemetry is shared by every decoder that should report into
// the same registry (all of a pool's workers, every server stream); the
// instruments are atomics, so concurrent decoders update them directly.
//
// A nil *Telemetry disables publication entirely: the hot path pays one
// nil check per hook and performs no other telemetry work, which is how
// the zero-allocation gates in alloc_test.go keep reporting 0 allocs with
// telemetry off. Hooks publish Stats *deltas* — the search already counts
// its work in Stats for free, so the frame loop never touches an atomic
// per arc, only per frame (streams) or per decode (batch).
type Telemetry struct {
	// Decodes counts completed batch decodes; Streams counts completed
	// stream lifecycles (NewStream..Finish).
	Decodes *telemetry.Counter
	Streams *telemetry.Counter
	// Frames counts decoded frames across all decoders sharing this set.
	Frames *telemetry.Counter
	// FrontierTokens is the per-frame active-token distribution — the live
	// view of the search's working-set size.
	FrontierTokens *telemetry.Histogram
	// DecodeSeconds is the per-utterance wall-time distribution.
	DecodeSeconds *telemetry.Histogram

	// Search work counters, mirroring Stats field for field.
	TokensExpanded   *telemetry.Counter
	TokensCreated    *telemetry.Counter
	TokensBeamCut    *telemetry.Counter
	ArcsTraversed    *telemetry.Counter
	EpsTraversed     *telemetry.Counter
	LMFetches        *telemetry.Counter
	LMProbes         *telemetry.Counter
	BackoffHops      *telemetry.Counter
	MemoHits         *telemetry.Counter
	MemoMisses       *telemetry.Counter
	PreemptivePruned *telemetry.Counter
	Rescues          *telemetry.Counter
	SearchFailures   *telemetry.Counter
	LatticeEntries   *telemetry.Counter

	// Score-ahead pipeline instruments (pipeline.go). PipelineRingDepth is
	// the most recently sampled lookahead-ring occupancy (scored rows not
	// yet searched); PipelineStalls counts search steps that found the ring
	// empty and had to wait for the scorer; PipelineScoreLead is the
	// distribution of how many frames ahead scoring was each time the
	// search consumed a row.
	PipelineRingDepth *telemetry.Gauge
	PipelineStalls    *telemetry.Counter
	PipelineScoreLead *telemetry.Histogram

	// Tracer, when non-nil, records one span per decode or stream with the
	// headline counters as attributes.
	Tracer *telemetry.Tracer
}

// NewTelemetry registers the decoder instrument family in reg and returns
// the set. A nil registry yields a fully inert (but non-nil) set; callers
// that want the hot path to skip hooks entirely should keep Telemetry nil
// instead.
func NewTelemetry(reg *telemetry.Registry, tracer *telemetry.Tracer) *Telemetry {
	return &Telemetry{
		Decodes:        reg.Counter("unfold_decoder_decodes_total", "Completed batch decodes."),
		Streams:        reg.Counter("unfold_decoder_streams_total", "Completed streaming decodes."),
		Frames:         reg.Counter("unfold_decoder_frames_total", "Decoded acoustic frames."),
		FrontierTokens: reg.Histogram("unfold_decoder_frontier_tokens", "Active tokens per decoded frame.", telemetry.ExpBuckets(8, 2, 11)),
		DecodeSeconds:  reg.Histogram("unfold_decoder_decode_seconds", "Wall time per utterance decode.", telemetry.ExpBuckets(0.0005, 4, 10)),

		TokensExpanded:   reg.Counter("unfold_decoder_tokens_expanded_total", "Tokens alive at frame starts."),
		TokensCreated:    reg.Counter("unfold_decoder_tokens_created_total", "Distinct tokens materialized."),
		TokensBeamCut:    reg.Counter("unfold_decoder_tokens_beam_cut_total", "Tokens dropped by beam/histogram pruning."),
		ArcsTraversed:    reg.Counter("unfold_decoder_arcs_traversed_total", "Emitting arcs evaluated."),
		EpsTraversed:     reg.Counter("unfold_decoder_eps_traversed_total", "Non-emitting arcs evaluated."),
		LMFetches:        reg.Counter("unfold_decoder_lm_fetches_total", "Cross-word LM resolutions."),
		LMProbes:         reg.Counter("unfold_decoder_lm_probes_total", "LM arc-search probes."),
		BackoffHops:      reg.Counter("unfold_decoder_backoff_hops_total", "Back-off arcs walked during LM resolution."),
		MemoHits:         reg.Counter("unfold_decoder_memo_hits_total", "Offset-cache hits."),
		MemoMisses:       reg.Counter("unfold_decoder_memo_misses_total", "Offset-cache misses."),
		PreemptivePruned: reg.Counter("unfold_decoder_preemptive_pruned_total", "Hypotheses abandoned mid back-off walk."),
		Rescues:          reg.Counter("unfold_decoder_rescues_total", "Beam widenings by search-failure rescue."),
		SearchFailures:   reg.Counter("unfold_decoder_search_failures_total", "Frames whose active set emptied for good."),
		LatticeEntries:   reg.Counter("unfold_decoder_lattice_entries_total", "Word-lattice records written."),

		PipelineRingDepth: reg.Gauge("unfold_pipeline_ring_depth", "Scored frames waiting in the lookahead ring (last sample)."),
		PipelineStalls:    reg.Counter("unfold_pipeline_stalls_total", "Search steps that waited on an empty lookahead ring."),
		PipelineScoreLead: reg.Histogram("unfold_pipeline_score_lead_frames", "Frames of scoring lead when the search consumed a row.", telemetry.ExpBuckets(1, 2, 8)),

		Tracer: tracer,
	}
}

// observeScoreLead records the scoring lead (ring occupancy) seen as the
// search consumed one row.
func (t *Telemetry) observeScoreLead(lead int) {
	if t == nil {
		return
	}
	t.PipelineRingDepth.Set(float64(lead))
	t.PipelineScoreLead.Observe(float64(lead))
}

// countStall records one search step that found the lookahead ring empty.
func (t *Telemetry) countStall() {
	if t == nil {
		return
	}
	t.PipelineStalls.Inc()
}

// observeFrontier records one frame's post-closure active-token count.
func (t *Telemetry) observeFrontier(tokens int) {
	if t == nil {
		return
	}
	t.FrontierTokens.Observe(float64(tokens))
}

// publishDelta adds the counter advance from prev to cur — the incremental
// publication streams perform per frame so a scrape mid-utterance sees the
// work done so far, not just completed decodes.
func (t *Telemetry) publishDelta(cur, prev Stats) {
	if t == nil {
		return
	}
	t.Frames.Add(int64(cur.Frames - prev.Frames))
	t.TokensExpanded.Add(cur.TokensExpanded - prev.TokensExpanded)
	t.TokensCreated.Add(cur.TokensCreated - prev.TokensCreated)
	t.TokensBeamCut.Add(cur.TokensBeamCut - prev.TokensBeamCut)
	t.ArcsTraversed.Add(cur.ArcsTraversed - prev.ArcsTraversed)
	t.EpsTraversed.Add(cur.EpsTraversed - prev.EpsTraversed)
	t.LMFetches.Add(cur.LMFetches - prev.LMFetches)
	t.LMProbes.Add(cur.LMProbes - prev.LMProbes)
	t.BackoffHops.Add(cur.BackoffHops - prev.BackoffHops)
	t.MemoHits.Add(cur.MemoHits - prev.MemoHits)
	t.MemoMisses.Add(cur.MemoMisses - prev.MemoMisses)
	t.PreemptivePruned.Add(cur.PreemptivePruned - prev.PreemptivePruned)
	t.Rescues.Add(cur.Rescues - prev.Rescues)
	t.SearchFailures.Add(cur.SearchFailures - prev.SearchFailures)
	t.LatticeEntries.Add(cur.LatticeEntries - prev.LatticeEntries)
}

// startSpan opens a per-decode span when tracing is enabled; the returned
// span is inert otherwise.
func (t *Telemetry) startSpan(name string) telemetry.Span {
	if t == nil {
		return telemetry.Span{}
	}
	return t.Tracer.Start(name)
}

// recordDecode publishes one completed batch decode: the whole Stats
// advance, the wall-time observation, and the span (when tracing).
func (t *Telemetry) recordDecode(st Stats, start time.Time, sp telemetry.Span) {
	if t == nil {
		return
	}
	t.Decodes.Inc()
	t.publishDelta(st, Stats{})
	t.DecodeSeconds.Observe(time.Since(start).Seconds())
	if sp.Active() {
		sp.End(
			telemetry.A("frames", int64(st.Frames)),
			telemetry.A("tokens_created", st.TokensCreated),
			telemetry.A("lm_fetches", st.LMFetches),
			telemetry.A("backoff_hops", st.BackoffHops),
			telemetry.A("rescues", st.Rescues),
			telemetry.A("search_failures", st.SearchFailures),
		)
	}
}

// recordStream publishes a completed stream lifecycle: the residual Stats
// delta not yet pushed frame-by-frame, the wall time, and the span.
func (t *Telemetry) recordStream(cur, published Stats, start time.Time, sp telemetry.Span) {
	if t == nil {
		return
	}
	t.Streams.Inc()
	t.publishDelta(cur, published)
	t.DecodeSeconds.Observe(time.Since(start).Seconds())
	if sp.Active() {
		sp.End(
			telemetry.A("frames", int64(cur.Frames)),
			telemetry.A("tokens_created", cur.TokensCreated),
			telemetry.A("lm_fetches", cur.LMFetches),
			telemetry.A("backoff_hops", cur.BackoffHops),
			telemetry.A("search_failures", cur.SearchFailures),
		)
	}
}

// now returns the wall clock only when publication is enabled, so disabled
// telemetry never reads the clock on the decode path.
func (t *Telemetry) now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}
