package decoder

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/semiring"
)

func TestTwoPassDecodes(t *testing.T) {
	f := getFixture(t, 42)
	tp, err := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		r := tp.Decode(sc)
		if len(r.Words) == 0 {
			t.Fatalf("utt %d: empty two-pass result", i)
		}
		if r.Candidates < 1 {
			t.Fatalf("utt %d: no candidates rescored", i)
		}
		if semiring.IsZero(r.Cost) {
			t.Fatalf("utt %d: infinite rescored cost", i)
		}
	}
}

// The two-pass decoder's accuracy must be in the same league as one-pass:
// it can lose hypotheses the unigram pass pruned, but on a small task with
// a reasonable lattice beam it should be close.
func TestTwoPassAccuracyComparable(t *testing.T) {
	f := getFixture(t, 42)
	one, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 metrics.WERAccumulator
	for i, sc := range f.scores {
		r1 := one.Decode(sc)
		r2 := two.Decode(sc)
		w1.Add(f.tk.Test[i].Words, r1.Words)
		w2.Add(f.tk.Test[i].Words, r2.Words)
	}
	if w2.WER() > w1.WER()+25 {
		t.Errorf("two-pass WER %.1f%% far worse than one-pass %.1f%%", w2.WER(), w1.WER())
	}
	t.Logf("one-pass WER %.1f%%, two-pass WER %.1f%%", w1.WER(), w2.WER())
}

// More lattice alternatives can only improve (or preserve) the rescored
// cost of the best hypothesis.
func TestTwoPassMoreCandidatesNeverWorse(t *testing.T) {
	f := getFixture(t, 42)
	small, _ := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 1)
	large, _ := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 12)
	for i, sc := range f.scores {
		rs := small.Decode(sc)
		rl := large.Decode(sc)
		if rl.Candidates < rs.Candidates {
			t.Errorf("utt %d: K=12 produced fewer candidates (%d) than K=1 (%d)",
				i, rl.Candidates, rs.Candidates)
		}
		if rl.Cost > rs.Cost+1e-3 {
			t.Errorf("utt %d: K=12 cost %v worse than K=1 cost %v", i, rl.Cost, rs.Cost)
		}
	}
}

func TestTwoPassErrors(t *testing.T) {
	f := getFixture(t, 42)
	if _, err := NewTwoPass(f.tk.AM.G, f.tk.AM.G, Config{}, 4); err == nil {
		t.Error("expected error for unsorted LM")
	}
}

func TestTwoPassDefaultK(t *testing.T) {
	f := getFixture(t, 42)
	tp, err := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tp.K != 4 {
		t.Errorf("default K = %d, want 4", tp.K)
	}
}

func TestConfidences(t *testing.T) {
	f := getFixture(t, 42)
	tp, err := NewTwoPass(f.tk.AM.G, f.tk.LMGraph.G, Config{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		list := tp.NBest(sc, 5)
		conf := Confidences(list)
		if len(conf) != len(list) {
			t.Fatalf("utt %d: %d confidences for %d hypotheses", i, len(conf), len(list))
		}
		var sum float64
		for j, c := range conf {
			if c < 0 || c > 1 {
				t.Fatalf("utt %d: confidence %v out of [0,1]", i, c)
			}
			if j > 0 && c > conf[j-1]+1e-12 {
				t.Fatalf("utt %d: confidences not ordered with costs", i)
			}
			sum += c
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("utt %d: confidences sum to %v", i, sum)
		}
	}
	if got := Confidences(nil); len(got) != 0 {
		t.Error("nil list should give empty confidences")
	}
}
