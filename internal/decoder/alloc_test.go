package decoder

import (
	"strconv"
	"testing"

	"repro/internal/bias"
	"repro/internal/semiring"
)

// These tests are the allocation-regression gates for the zero-allocation
// frontier: testing.AllocsPerRun over the hot-path entry points, with limits
// tight enough that reintroducing a per-frame map, sort, or queue allocation
// fails the suite. They run as part of `go test` (and therefore `make
// check`); the numbers themselves are tracked in docs/BENCHMARKS.md.

// decodeInPlace replays a full utterance through stepFrame/epsClosure using
// one locally-owned scratch set — the steady-state shape of the hot path,
// with the pool and Result construction factored out.
func decodeInPlace(d *OnTheFly, scores [][]float32, sc *scratch) {
	cfg := d.cfg
	sc.lat.reset()
	st := Stats{}
	cur, next := sc.cur, sc.next
	cur.reset()
	cur.relax(d.startKey(), semiring.One, -1)
	d.epsClosure(cur, &sc.lat, &st, semiring.Zero, -1, sc)
	for f := range scores {
		d.stepFrame(cur, next, scores[f], cfg.Beam, cfg.MaxActive, &sc.lat, &st, f, sc)
		if next.len() == 0 {
			return
		}
		cur, next = next, cur
	}
}

// TestAllocsStepFrame gates the per-frame core: after one warmup utterance
// (which grows every buffer to its high-water mark), replaying the same
// utterance through stepFrame and epsClosure must allocate nothing at all.
func TestAllocsStepFrame(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	sc := getScratch()
	defer putScratch(sc)
	decodeInPlace(d, f.scores[0], sc) // warm buffers and the offset memo

	allocs := testing.AllocsPerRun(10, func() {
		decodeInPlace(d, f.scores[0], sc)
	})
	if allocs > 0 {
		t.Errorf("steady-state stepFrame loop allocates %.1f objects per utterance, want 0", allocs)
	}
}

// TestAllocsBiasedStepFrame extends the per-frame gate to the three-way
// composition: with a real (non-empty) bias machine installed, the warm
// stepFrame/epsClosure loop must still allocate nothing — Advance walks the
// compiled machine with no per-word heap work, so biased decoding adds
// exactly 0 allocs/frame over the two-layer path.
func TestAllocsBiasedStepFrame(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	var phrases []string
	for _, w := range f.tk.Test[0].Words {
		phrases = append(phrases, strconv.Itoa(int(w)))
	}
	m, err := bias.Compile(phrases, 2, numLookup)
	if err != nil {
		t.Fatal(err)
	}
	if m.Phrases() == 0 || m.NumStates() < 2 {
		t.Fatalf("bias machine trivial: %d phrases, %d states", m.Phrases(), m.NumStates())
	}
	if err := d.SetBias(m); err != nil {
		t.Fatal(err)
	}
	sc := getScratch()
	defer putScratch(sc)
	decodeInPlace(d, f.scores[0], sc) // warm buffers and the offset memo

	allocs := testing.AllocsPerRun(10, func() {
		decodeInPlace(d, f.scores[0], sc)
	})
	if allocs > 0 {
		t.Errorf("steady-state biased stepFrame loop allocates %.1f objects per utterance, want 0", allocs)
	}
}

// TestAllocsEpsClosure gates the closure in isolation: relaxing a warm
// frontier's epsilon arcs must not allocate.
func TestAllocsEpsClosure(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sc := getScratch()
	defer putScratch(sc)
	st := Stats{}
	seed := func() {
		sc.lat.reset()
		sc.cur.reset()
		sc.cur.relax(otfKey(d.am.Start(), d.lm.Start()), semiring.One, -1)
	}
	seed()
	d.epsClosure(sc.cur, &sc.lat, &st, semiring.Zero, -1, sc) // warm

	allocs := testing.AllocsPerRun(10, func() {
		seed()
		d.epsClosure(sc.cur, &sc.lat, &st, semiring.Zero, -1, sc)
	})
	if allocs > 0 {
		t.Errorf("steady-state epsClosure allocates %.1f objects per run, want 0", allocs)
	}
}

// TestAllocsDecodePerFrame gates the public batch entry point: a warm Decode
// call's whole-utterance allocation bill (Result construction, backtrace
// copies, counter sampling) must average below one object per frame.
func TestAllocsDecodePerFrame(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	scores := f.scores[0]
	d.Decode(scores) // warm the scratch pool and the offset memo

	allocs := testing.AllocsPerRun(10, func() { d.Decode(scores) })
	perFrame := allocs / float64(len(scores))
	if perFrame > 1 {
		t.Errorf("Decode allocates %.2f objects/frame (%.0f per %d-frame utterance), want <= 1",
			perFrame, allocs, len(scores))
	}
}

// TestAllocsLaneStep gates the batched lane path end to end: a warm
// join/push/step-to-drain/leave cycle over a full lane group — batched
// scoring included — must allocate NOTHING. This is strictly stronger than
// "0 allocs per frame": the whole continuous-batching cycle (slot recycling,
// stream reset, scorer-state reset, feature queueing) is on the measured
// path, so a per-join allocation fails the gate just like a per-frame one.
// unfold-bench's lanes row re-measures the same loop for `-check`.
func TestAllocsLaneStep(t *testing.T) {
	f := getFixture(t, 42)
	const width = 4
	g, err := NewLaneGroup(f.tk.Scorer, width)
	if err != nil {
		t.Fatal(err)
	}
	decs := make([]*OnTheFly, width)
	for i := range decs {
		if decs[i], err = NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true}); err != nil {
			t.Fatal(err)
		}
	}
	lanes := make([]*Lane, width)
	frames := 0
	run := func() {
		for i := 0; i < width; i++ {
			l, err := g.Join(decs[i])
			if err != nil {
				t.Fatal(err)
			}
			l.Push(f.tk.Test[i].Frames)
			lanes[i] = l
		}
		for g.Step() > 0 {
		}
		for _, l := range lanes {
			l.Leave() // Leave, not Finish: Result construction is off the steady path
		}
	}
	run() // warm every buffer, stream scratch and scorer lane state
	for i := 0; i < width; i++ {
		frames += len(f.tk.Test[i].Frames)
	}

	allocs := testing.AllocsPerRun(10, run)
	if allocs > 0 {
		t.Errorf("steady-state lane cycle allocates %.1f objects per %d-frame group cycle, want 0",
			allocs, frames)
	}
}

// TestAllocsStreamPush gates the incremental path: a full stream lifecycle
// (NewStream, one Push per frame, Finish) must stay under two objects per
// frame even though each stream takes a fresh scratch from the pool.
func TestAllocsStreamPush(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	scores := f.scores[0]
	run := func() {
		s := d.NewStream()
		for _, frame := range scores {
			_ = s.Push(frame)
		}
		s.Finish()
	}
	run() // warm

	allocs := testing.AllocsPerRun(10, run)
	perFrame := allocs / float64(len(scores))
	if perFrame > 2 {
		t.Errorf("stream lifecycle allocates %.2f objects/frame (%.0f per %d-frame utterance), want <= 2",
			perFrame, allocs, len(scores))
	}
}
