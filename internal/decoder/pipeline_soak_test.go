package decoder

import (
	"context"
	"flag"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// pipelineSoak is the wall time for the score-ahead pipeline churn soak.
// `make pipeline-soak` runs it at 20s under -race (nightly CI at 60s); the
// default 2s short mode rides along in `make race`.
var pipelineSoak = flag.Duration("pipeline-soak", 2*time.Second, "wall time for the pipeline churn soak (make pipeline-soak runs 20s)")

// TestSoakPipelineChurn is the pipeline's endurance pass: several goroutines
// churn pipelined batch decodes, chunked PipeStreams, racing cancellations
// and mid-stream aborts — fresh Pipeline per utterance (so producer
// goroutines start and drain constantly), random lookahead depths including
// 0 — for the soak duration, under -race. Every completed utterance must
// match the solo reference bit for bit, and every cancelled prefix must
// match a solo decode of exactly that prefix. The scorer is shared across
// all goroutines, exercising the documented ScoreWindow concurrency
// contract (read-only weights, private per-pipeline state).
func TestSoakPipelineChurn(t *testing.T) {
	f := getFixture(t, 42)
	configs := []Config{{}, {PreemptivePruning: true}}

	// Solo references, one per (config, utterance), from cold decoders.
	type refKey struct{ cfg, utt int }
	want := map[refKey]*Result{}
	for ci, cfg := range configs {
		for ui, u := range f.tk.Test {
			d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
			if err != nil {
				t.Fatal(err)
			}
			want[refKey{ci, ui}] = d.Decode(f.tk.Scorer.ScoreUtterance(u.Frames))
		}
	}
	check := func(label string, ci, ui int, got *Result) bool {
		w := want[refKey{ci, ui}]
		if got.Cost != w.Cost || got.ReachedFinal != w.ReachedFinal ||
			!equalInt32s(got.Words, w.Words) || !equalInt32s(got.WordEnds, w.WordEnds) ||
			got.Stats.Search() != w.Stats.Search() {
			t.Errorf("%s cfg%d utt%d: (%v, %v), want (%v, %v)", label, ci, ui, got.Words, got.Cost, w.Words, w.Cost)
			return false
		}
		return true
	}
	// checkLoose skips the search-statistics comparison: decodes on a reused
	// decoder have a warm memo, which changes probe counts but never results.
	checkLoose := func(label string, ci, ui int, got *Result) bool {
		w := want[refKey{ci, ui}]
		if got.Cost != w.Cost || got.ReachedFinal != w.ReachedFinal ||
			!equalInt32s(got.Words, w.Words) || !equalInt32s(got.WordEnds, w.WordEnds) {
			t.Errorf("%s cfg%d utt%d: (%v, %v), want (%v, %v)", label, ci, ui, got.Words, got.Cost, w.Words, w.Cost)
			return false
		}
		return true
	}

	deadline := time.Now().Add(*pipelineSoak)
	var decoded, cancelled atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 17))
			for time.Now().Before(deadline) {
				ci := rng.Intn(len(configs))
				ui := rng.Intn(len(f.tk.Test))
				k := rng.Intn(9) // 0..8; 0 exercises the synchronous fallback
				cfg := configs[ci]
				cfg.Lookahead = k
				d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
				if err != nil {
					t.Error(err)
					return
				}
				p, err := NewPipeline(d, f.tk.Scorer)
				if err != nil {
					t.Error(err)
					return
				}
				frames := f.tk.Test[ui].Frames
				switch rng.Intn(4) {
				case 0: // batch decode
					if !check("soak batch", ci, ui, p.Decode(frames)) {
						p.Close()
						return
					}
					decoded.Add(1)
				case 1: // chunked stream
					s := p.NewStream()
					chunk := 1 + rng.Intn(8)
					ok := true
					for off := 0; off < len(frames); off += chunk {
						end := off + chunk
						if end > len(frames) {
							end = len(frames)
						}
						if err := s.Push(frames[off:end]); err != nil {
							t.Errorf("soak stream push: %v", err)
							ok = false
							break
						}
						_ = s.Partial()
					}
					if ok {
						res, err := s.Finish()
						if err != nil {
							t.Errorf("soak stream finish: %v", err)
						} else if !check("soak stream", ci, ui, res) {
							ok = false
						}
					}
					if !ok {
						p.Close()
						return
					}
					decoded.Add(1)
				case 2: // racing cancellation
					ctx, cancel := context.WithCancel(context.Background())
					go cancel()
					res, derr := p.DecodeContext(ctx, frames)
					if derr != nil {
						n := res.Stats.Frames
						if n < 0 || n > len(frames) {
							t.Errorf("soak cancel: %d frames of %d", n, len(frames))
							p.Close()
							return
						}
						dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, configs[ci])
						if err != nil {
							t.Error(err)
							p.Close()
							return
						}
						w := dRef.Decode(f.tk.Scorer.ScoreUtterance(frames[:n]))
						if res.Cost != w.Cost || !equalInt32s(res.Words, w.Words) || res.Stats.Search() != w.Stats.Search() {
							t.Errorf("soak cancel@%d: (%v, %v), want (%v, %v)", n, res.Words, res.Cost, w.Words, w.Cost)
							p.Close()
							return
						}
						cancelled.Add(1)
					} else if !check("soak cancel-miss", ci, ui, res) {
						p.Close()
						return
					}
					cancel()
				default: // aborted stream, then a clean decode on the same pipeline
					s := p.NewStream()
					if err := s.Push(frames[:1+rng.Intn(len(frames))]); err != nil {
						t.Errorf("soak abort push: %v", err)
						p.Close()
						return
					}
					s.Abort()
					if !checkLoose("soak post-abort", ci, ui, p.Decode(frames)) {
						p.Close()
						return
					}
					decoded.Add(1)
				}
				p.Close()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("pipeline soak failed after %d decodes, %d cancellations", decoded.Load(), cancelled.Load())
	}
	if decoded.Load() == 0 {
		t.Fatal("pipeline soak completed zero utterances")
	}
	t.Logf("pipeline soak: %d clean utterances, %d verified cancellations in %s", decoded.Load(), cancelled.Load(), *pipelineSoak)
}
