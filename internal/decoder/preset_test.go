package decoder

import (
	"fmt"
	"testing"
)

// TestDegradedPresetLadder pins the ladder arithmetic: level 0 is the
// configured search, every level halves both knobs, and the floors stop
// further narrowing.
func TestDegradedPresetLadder(t *testing.T) {
	cfg := Config{Beam: 24, MaxActive: 3000}
	p0 := cfg.DegradedPreset(0)
	if p0.Beam != 24 || p0.MaxActive != 3000 {
		t.Fatalf("level 0 = %+v, want configured values", p0)
	}
	p1 := cfg.DegradedPreset(1)
	if p1.Beam != 12 || p1.MaxActive != 1500 {
		t.Errorf("level 1 = %+v, want beam 12 / max 1500", p1)
	}
	p2 := cfg.DegradedPreset(2)
	if p2.Beam != 6 || p2.MaxActive != 750 {
		t.Errorf("level 2 = %+v, want beam 6 / max 750", p2)
	}
	// Deep levels clamp at the floors rather than collapsing to nothing.
	deep := cfg.DegradedPreset(30)
	if deep.Beam < minDegradedBeam || deep.MaxActive < minDegradedMaxActive {
		t.Errorf("deep level fell through the floors: %+v", deep)
	}
	if floor := cfg.DegradedPreset(31); floor != deep {
		t.Errorf("ladder not stable at the floor: %+v vs %+v", floor, deep)
	}
	// The zero config degrades from the defaults, not from zero.
	if p := (Config{}).DegradedPreset(1); p.Beam != 12 || p.MaxActive != 1500 {
		t.Errorf("zero-config level 1 = %+v, want defaulted ladder", p)
	}
}

// TestSetSearchPresetNarrowsAndRestores checks the seam end to end: a
// degraded preset shrinks the search like an equivalent Config would, and
// clearing it restores byte-identical full-quality decodes.
func TestSetSearchPresetNarrowsAndRestores(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	full := d.Decode(f.scores[0])

	// A decoder configured at the degraded operating point is the oracle
	// for the preset path.
	lvl2 := Config{}.DegradedPreset(2)
	oracle, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G,
		Config{Beam: lvl2.Beam, MaxActive: lvl2.MaxActive})
	if err != nil {
		t.Fatal(err)
	}
	want := oracle.Decode(f.scores[0])

	d.SetSearchPreset(lvl2)
	got := d.Decode(f.scores[0])
	if fmt.Sprint(got.Words) != fmt.Sprint(want.Words) || got.Cost != want.Cost {
		t.Errorf("preset decode diverged from equivalently configured decoder:\n got %v (%v)\nwant %v (%v)",
			got.Words, got.Cost, want.Words, want.Cost)
	}
	if got.Stats.TokensExpanded >= full.Stats.TokensExpanded {
		t.Errorf("degraded decode expanded %d tokens >= full %d",
			got.Stats.TokensExpanded, full.Stats.TokensExpanded)
	}

	d.ClearSearchPreset()
	restored := d.Decode(f.scores[0])
	if fmt.Sprint(restored.Words) != fmt.Sprint(full.Words) || restored.Cost != full.Cost {
		t.Errorf("ClearSearchPreset did not restore the full search: %v vs %v",
			restored.Words, full.Words)
	}
}

// TestStreamHonorsPreset checks that a stream started on a preset decoder
// searches at the degraded operating point and matches batch decoding at
// the same point (the stream/batch equivalence contract, preserved under
// degradation).
func TestStreamHonorsPreset(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	p := Config{}.DegradedPreset(2)
	d.SetSearchPreset(p)
	want := d.Decode(f.scores[1])

	st := d.NewStream()
	for _, row := range f.scores[1] {
		if err := st.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Finish()
	if fmt.Sprint(got.Words) != fmt.Sprint(want.Words) || got.Cost != want.Cost {
		t.Errorf("preset stream %v (%v) != preset batch %v (%v)",
			got.Words, got.Cost, want.Words, want.Cost)
	}
}
