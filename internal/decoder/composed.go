package decoder

import (
	"fmt"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// Composed is the fully-composed baseline decoder: a classic token-passing
// Viterbi beam search over one offline-composed WFST, the approach of the
// accelerators the paper compares against.
type Composed struct {
	g   *wfst.WFST
	cfg Config
}

// NewComposed wraps an offline-composed search graph.
func NewComposed(g *wfst.WFST, cfg Config) (*Composed, error) {
	if g.Start() == wfst.NoState {
		return nil, fmt.Errorf("decoder: composed graph has no start state")
	}
	return &Composed{g: g, cfg: cfg.withDefaults()}, nil
}

// Decode runs the Viterbi beam search over an utterance's acoustic scores
// (scores[frame][senone], 1-based senone indexing).
func (d *Composed) Decode(scores [][]float32) *Result {
	g, cfg := d.g, d.cfg
	lat := &lattice{}
	st := Stats{Frames: len(scores)}

	cur := map[uint64]token{uint64(g.Start()): {semiring.One, -1}}
	d.epsClosure(cur, lat, &st, -1)

	for f := range scores {
		_, cut := beamPrune(cur, cfg.Beam, cfg.MaxActive)
		st.TokensBeamCut += cut
		st.TokensExpanded += int64(len(cur))
		next := make(map[uint64]token, 2*len(cur))
		frame := scores[f]
		for key, tok := range cur {
			s := wfst.StateID(key)
			for _, a := range g.Arcs(s) {
				if a.In == wfst.Epsilon {
					continue // non-emitting arcs are handled by the closure
				}
				st.ArcsTraversed++
				c := tok.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
				latIdx := tok.lat
				if a.Out != wfst.Epsilon {
					latIdx = lat.add(a.Out, tok.lat, int32(f))
				}
				if created, _ := relax(next, uint64(a.Next), c, latIdx); created {
					st.TokensCreated++
				}
			}
		}
		d.epsClosure(next, lat, &st, int32(f))
		if len(next) == 0 {
			// Search died (beam too tight): return the best partial result.
			return d.finish(cur, lat, st)
		}
		cur = next
	}
	return d.finish(cur, lat, st)
}

// epsClosure relaxes non-emitting arcs within a frame using a worklist.
func (d *Composed) epsClosure(active map[uint64]token, lat *lattice, st *Stats, frame int32) {
	queue := make([]uint64, 0, len(active))
	for k := range active {
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		key := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		tok, ok := active[key]
		if !ok {
			continue
		}
		s := wfst.StateID(key)
		for _, a := range d.g.Arcs(s) {
			if a.In != wfst.Epsilon {
				continue
			}
			st.EpsTraversed++
			c := tok.cost + a.W
			latIdx := tok.lat
			if a.Out != wfst.Epsilon {
				latIdx = lat.add(a.Out, tok.lat, frame)
			}
			created, improved := relax(active, uint64(a.Next), c, latIdx)
			if created {
				st.TokensCreated++
			}
			if improved {
				queue = append(queue, uint64(a.Next))
			}
		}
	}
}

// finish selects the best final token (or best overall when none is final)
// and backtraces its word sequence.
func (d *Composed) finish(active map[uint64]token, lat *lattice, st Stats) *Result {
	res := &Result{Cost: semiring.Zero, Stats: st}
	bestAny, bestAnyLat := semiring.Zero, int32(-1)
	for key, tok := range active {
		s := wfst.StateID(key)
		if fw := d.g.Final(s); !semiring.IsZero(fw) {
			c := tok.cost + fw
			if c < res.Cost {
				res.Cost = c
				res.Words, res.WordEnds = lat.backtrace(tok.lat)
				res.ReachedFinal = true
			}
		}
		if tok.cost < bestAny {
			bestAny, bestAnyLat = tok.cost, tok.lat
		}
	}
	if !res.ReachedFinal && !semiring.IsZero(bestAny) {
		res.Cost = bestAny
		res.Words, res.WordEnds = lat.backtrace(bestAnyLat)
	}
	res.Stats.LatticeEntries = int64(lat.Entries())
	return res
}
