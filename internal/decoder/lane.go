package decoder

import (
	"fmt"

	"repro/internal/acoustic"
)

// LaneGroup advances up to `width` utterances in frame-synchronous lockstep:
// one batched scorer call per step produces the score row for every active
// lane (dense matrix work through acoustic.BatchScorer — the weight matrices
// stream through the cache once per step instead of once per utterance),
// then each lane runs its own tokenStore frontier step against its own
// on-the-fly composition state. This is the software shape of the batched
// GPU Viterbi decoders (PAPERS.md): amortize the dense compute across
// utterances, keep the sparse search per-utterance.
//
// Lanes join and leave mid-flight (continuous batching): a slot freed by a
// finished utterance is immediately reusable, and joining recycles the
// slot's stream, scratch set and scorer state in place, so steady-state
// operation — including the join/drain churn — performs no per-frame heap
// allocation.
//
// Determinism contract: a lane's result is byte-identical to a solo decode
// of the same frames on the same decoder configuration, regardless of group
// width, what the other lanes are doing, or the order in which lanes join.
// The two halves compose: ScoreStep rows are bitwise-identical to
// ScoreUtterance rows (see internal/acoustic/batch.go), and each lane's
// frontier step is exactly the Stream path already proven identical to
// batch Decode. The differential lane-vs-solo oracle locks this down.
//
// A LaneGroup is confined to one goroutine; internal/pool's LaneScheduler
// adds the concurrent admission machinery on top.
type LaneGroup struct {
	scorer acoustic.BatchScorer
	lanes  []Lane
	free   []int // free slot indices (LIFO: recently used slots stay warm)

	// Gather buffers, index-aligned with lanes: the per-step frame vector,
	// score row, and scorer state for each slot.
	feats  [][]float32
	rows   [][]float32
	states []acoustic.LaneState

	// Score-ahead mode (NewLaneGroupLookahead with lookahead > 0): each
	// slot's state is a window state and each lane carries a private ring
	// of lookahead score rows; Step refills an empty ring with ONE
	// ScoreWindow call covering up to lookahead queued frames, so the
	// per-frame batched scorer call becomes a per-window call
	// (ScorerCallsPerFrame approaches 1/lookahead). Lookahead 0 is the
	// PR-8 frame-synchronous path, unchanged.
	lookahead    int
	wscorer      acoustic.WindowScorer
	wfbuf, wobuf [][]float32 // per-call window gather scratch

	stats LaneStats
}

// LaneStats counts the group's lifetime activity. The headline ratio is
// ScorerCalls/Frames: solo frame-synchronous decoding costs one scorer call
// per lane per frame, a full group costs one call per step for all lanes.
type LaneStats struct {
	// ScorerCalls is the number of batched ScoreStep invocations.
	ScorerCalls int64
	// Frames is the total lane-frames advanced (summed over lanes).
	Frames int64
	// Steps counts lockstep iterations that advanced at least one lane.
	Steps int64
	// Joins and Drains count utterances entering and leaving slots.
	Joins  int64
	Drains int64
}

// ScorerCallsPerFrame is the dense-amortization ratio: 1.0 means solo-style
// scoring, 1/width is the full-group ideal.
func (s LaneStats) ScorerCallsPerFrame() float64 {
	if s.Frames == 0 {
		return 0
	}
	return float64(s.ScorerCalls) / float64(s.Frames)
}

// Lane is one slot of a LaneGroup: a persistent recycled Stream plus a
// queue of feature frames waiting to be stepped. The queue holds features,
// not scores — scoring happens inside LaneGroup.Step, where it batches
// across lanes.
type Lane struct {
	g       *LaneGroup
	idx     int
	s       *Stream
	pending [][]float32 // queued feature frames (aliases caller slices)
	head    int         // next pending index to step
	active  bool
	err     error // recovered panic from this lane's frontier step

	// Score-ahead state (lookahead mode only): ring holds rows scored
	// ahead of the search for this lane; scored is the pending index up to
	// which frames have been handed to the scorer (invariant:
	// scored == head + rCount).
	ring   [][]float32
	rHead  int
	rCount int
	scored int
}

// NewLaneGroup builds a group of width slots over a batch-capable scorer.
// All repo scorers (GMM/DNN/RNN) implement acoustic.BatchScorer; the error
// covers external Scorer implementations that do not.
func NewLaneGroup(scorer acoustic.Scorer, width int) (*LaneGroup, error) {
	return NewLaneGroupLookahead(scorer, width, 0)
}

// NewLaneGroupLookahead builds a lane group with a score-ahead stage:
// lookahead > 0 makes each Step refill a lane's empty row ring with one
// window-batched scorer call over up to lookahead queued frames, instead of
// scoring one frame per lane per step. Results are byte-identical to
// lookahead 0 (and to solo decodes) at any depth. Requires the scorer to
// implement acoustic.WindowScorer when lookahead > 0.
func NewLaneGroupLookahead(scorer acoustic.Scorer, width, lookahead int) (*LaneGroup, error) {
	bs, ok := scorer.(acoustic.BatchScorer)
	if !ok {
		return nil, fmt.Errorf("decoder: scorer %s does not support batched lane scoring", scorer.Name())
	}
	if width < 1 {
		return nil, fmt.Errorf("decoder: lane group width must be >= 1, got %d", width)
	}
	if lookahead < 0 {
		return nil, fmt.Errorf("decoder: negative lane lookahead %d", lookahead)
	}
	g := &LaneGroup{
		scorer:    bs,
		lanes:     make([]Lane, width),
		free:      make([]int, 0, width),
		feats:     make([][]float32, width),
		rows:      make([][]float32, width),
		states:    make([]acoustic.LaneState, width),
		lookahead: lookahead,
	}
	if lookahead > 0 {
		ws, ok := scorer.(acoustic.WindowScorer)
		if !ok {
			return nil, fmt.Errorf("decoder: scorer %s does not support window scoring (lookahead %d)", scorer.Name(), lookahead)
		}
		g.wscorer = ws
		g.wfbuf = make([][]float32, lookahead)
		g.wobuf = make([][]float32, lookahead)
	}
	for i := range g.lanes {
		g.lanes[i] = Lane{g: g, idx: i}
		g.rows[i] = make([]float32, bs.ScoreDim())
		if lookahead > 0 {
			g.states[i] = g.wscorer.NewWindowState(lookahead)
			g.lanes[i].ring = make([][]float32, lookahead)
			for j := range g.lanes[i].ring {
				g.lanes[i].ring[j] = make([]float32, bs.ScoreDim())
			}
		} else {
			g.states[i] = bs.NewLaneState()
		}
		g.free = append(g.free, i)
	}
	return g, nil
}

// Width reports the slot count.
func (g *LaneGroup) Width() int { return len(g.lanes) }

// Active reports how many slots currently hold an utterance.
func (g *LaneGroup) Active() int { return len(g.lanes) - len(g.free) }

// Stats snapshots the group's lifetime counters.
func (g *LaneGroup) Stats() LaneStats { return g.stats }

// ErrLanesFull is returned by Join when every slot is occupied.
var ErrLanesFull = fmt.Errorf("decoder: lane group full")

// Join attaches a new utterance to a free slot, decoding with d (which
// carries the lane's configuration, offset cache and search preset). The
// slot's stream, scratch and scorer state are recycled in place, so a warm
// join allocates nothing. Returns ErrLanesFull when no slot is free.
func (g *LaneGroup) Join(d *OnTheFly) (*Lane, error) {
	if len(g.free) == 0 {
		return nil, ErrLanesFull
	}
	idx := g.free[len(g.free)-1]
	g.free = g.free[:len(g.free)-1]
	l := &g.lanes[idx]
	l.active = true
	l.err = nil
	l.head = 0
	l.pending = l.pending[:0]
	l.scored, l.rHead, l.rCount = 0, 0, 0
	if l.s == nil {
		l.s = d.NewStream()
	} else {
		l.s.reset(d)
	}
	g.states[idx].Reset()
	g.stats.Joins++
	return l, nil
}

// Step advances the group by one frame: every active lane with a queued
// frame is scored in one batched ScoreStep call, then each runs its
// frontier step. Returns the number of lanes advanced (0 when every lane
// is idle or drained). Lanes whose search has died drop their remaining
// queue — a dead stream's Push is a no-op, so the result cannot change.
func (g *LaneGroup) Step() int {
	if g.lookahead > 0 {
		return g.stepLookahead()
	}
	any := false
	for i := range g.lanes {
		l := &g.lanes[i]
		g.feats[i] = nil
		if !l.active || l.head >= len(l.pending) {
			continue
		}
		if l.s.dead || l.err != nil {
			l.pending = l.pending[:0]
			l.head = 0
			continue
		}
		g.feats[i] = l.pending[l.head]
		any = true
	}
	if !any {
		return 0
	}
	g.stats.ScorerCalls++
	g.scorer.ScoreStep(g.states, g.feats, g.rows)
	advanced := 0
	for i := range g.lanes {
		if g.feats[i] == nil {
			continue
		}
		l := &g.lanes[i]
		l.head++
		if l.head == len(l.pending) {
			l.pending = l.pending[:0]
			l.head = 0
		}
		l.step(g.rows[i])
		advanced++
	}
	g.stats.Frames += int64(advanced)
	g.stats.Steps++
	return advanced
}

// stepLookahead advances every active lane by one frame in score-ahead
// mode. A lane whose ring is empty first refills it with ONE ScoreWindow
// call covering up to lookahead queued frames — that is the whole
// amortization: with depth k the batched per-frame call of the synchronous
// group becomes one call per k frames. Each lane then consumes one ring row
// through its frontier step, keeping the lanes frame-synchronous with each
// other. A ScoreWindow panic propagates to the caller like a ScoreStep
// panic does (the pool's scheduler contains it and fails the group's active
// lanes); a panic in a lane's own frontier step is contained per-lane by
// Lane.step as usual.
func (g *LaneGroup) stepLookahead() int {
	advanced := 0
	for i := range g.lanes {
		l := &g.lanes[i]
		if !l.active || l.head >= len(l.pending) {
			continue
		}
		if l.s.dead || l.err != nil {
			l.pending = l.pending[:0]
			l.head, l.scored, l.rHead, l.rCount = 0, 0, 0, 0
			continue
		}
		if l.rCount == 0 {
			w := len(l.pending) - l.scored
			if w > g.lookahead {
				w = g.lookahead
			}
			for j := 0; j < w; j++ {
				g.wfbuf[j] = l.pending[l.scored+j]
				g.wobuf[j] = l.ring[j]
			}
			g.stats.ScorerCalls++
			g.wscorer.ScoreWindow(g.states[i], g.wfbuf[:w], g.wobuf[:w])
			l.scored += w
			l.rCount = w
			l.rHead = 0
		}
		row := l.ring[l.rHead]
		l.rHead++
		l.rCount--
		l.head++
		if l.head == len(l.pending) {
			l.pending = l.pending[:0]
			l.head, l.scored, l.rHead, l.rCount = 0, 0, 0, 0
		}
		l.step(row)
		advanced++
	}
	if advanced > 0 {
		g.stats.Frames += int64(advanced)
		g.stats.Steps++
	}
	return advanced
}

// step pushes one score row through the lane's stream with panic isolation:
// a panic in this lane's frontier step (corrupted cache offset, poisoned
// row) marks the lane failed without disturbing the other lanes, mirroring
// the worker-pool isolation in internal/pool.decodeOne.
func (l *Lane) step(row []float32) {
	defer func() {
		if r := recover(); r != nil {
			l.err = fmt.Errorf("decoder: lane %d: recovered panic: %v", l.idx, r)
		}
	}()
	l.s.Push(row)
}

// Push queues feature frames for this lane. The slices are aliased, not
// copied; callers must not mutate them until the lane drains. Only valid on
// a joined lane.
func (l *Lane) Push(frames [][]float32) {
	l.pending = append(l.pending, frames...)
}

// Pending reports how many queued frames have not been stepped yet.
func (l *Lane) Pending() int { return len(l.pending) - l.head }

// DropPending discards the queued-but-unstepped frames — the cancellation
// path: the utterance ends at the frames already consumed, and Finish then
// returns that partial result without stepping further. In score-ahead mode
// rows already scored but not yet searched are discarded with them (the
// search never saw those frames, so the result is exactly the decode of the
// consumed prefix).
func (l *Lane) DropPending() {
	l.pending = l.pending[:0]
	l.head, l.scored, l.rHead, l.rCount = 0, 0, 0, 0
}

// Frames reports how many frames this lane's search has consumed.
func (l *Lane) Frames() int { return l.s.st.Frames }

// Err reports the recovered panic that failed this lane, if any.
func (l *Lane) Err() error { return l.err }

// Partial returns the lane's current best hypothesis (Stream.Partial).
func (l *Lane) Partial() []int32 { return l.s.Partial() }

// Finish drains the lane's remaining queue (stepping the whole group — the
// other lanes advance too, which is the lockstep invariant, not a side
// effect), ends the utterance, frees the slot, and returns the final
// result — byte-identical to a solo decode of the same frames. A failed
// lane (Err != nil) returns nil; its slot is still freed.
func (l *Lane) Finish() *Result {
	for l.active && l.Pending() > 0 && l.err == nil && !l.s.dead {
		if l.g.Step() == 0 {
			break
		}
	}
	if l.err != nil {
		l.release()
		return nil
	}
	res := l.s.Finish()
	l.release()
	return res
}

// Leave abandons the lane's utterance without a result and frees the slot —
// the cancellation/teardown path.
func (l *Lane) Leave() { l.release() }

// release returns the slot to the free list.
func (l *Lane) release() {
	if !l.active {
		return
	}
	l.active = false
	l.pending = l.pending[:0]
	l.head, l.scored, l.rHead, l.rCount = 0, 0, 0, 0
	l.g.free = append(l.g.free, l.idx)
	l.g.stats.Drains++
}
