package decoder

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

// TestTokenStoreRelax exercises create/improve/ignore against the retained
// map relax as the oracle.
func TestTokenStoreRelax(t *testing.T) {
	s := newTokenStore()
	m := map[uint64]token{}
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 400)
	for i := range keys {
		keys[i] = rng.Uint64() % 200 // force collisions on the same states
	}
	for i, k := range keys {
		c := semiring.Weight(rng.Float32() * 50)
		lat := int32(i)
		_, gotCreated, gotImproved := s.relax(k, c, lat)
		wantCreated, wantImproved := relax(m, k, c, lat)
		if gotCreated != wantCreated || gotImproved != wantImproved {
			t.Fatalf("relax(%d, %v): store (created=%v improved=%v) vs map (created=%v improved=%v)",
				k, c, gotCreated, gotImproved, wantCreated, wantImproved)
		}
	}
	if s.len() != len(m) {
		t.Fatalf("store has %d entries, map has %d", s.len(), len(m))
	}
	for i, k := range s.keys {
		if s.toks[i] != m[k] {
			t.Fatalf("key %d: store token %+v, map token %+v", k, s.toks[i], m[k])
		}
	}
}

// TestTokenStoreInsertionOrder verifies the iteration-order contract: keys
// appear in first-insertion order, unperturbed by later improvements.
func TestTokenStoreInsertionOrder(t *testing.T) {
	s := newTokenStore()
	order := []uint64{42, 7, 99, 3, 7, 42, 1000}
	for i, k := range order {
		s.relax(k, semiring.Weight(10-i), int32(i))
	}
	want := []uint64{42, 7, 99, 3, 1000}
	if s.len() != len(want) {
		t.Fatalf("len = %d, want %d", s.len(), len(want))
	}
	for i, k := range want {
		if s.keys[i] != k {
			t.Fatalf("keys[%d] = %d, want %d (insertion order violated)", i, s.keys[i], k)
		}
	}
}

// TestTokenStoreGrow pushes far past the initial table size and checks every
// entry remains reachable afterwards.
func TestTokenStoreGrow(t *testing.T) {
	s := newTokenStore()
	const n = 10_000
	for i := 0; i < n; i++ {
		s.relax(uint64(i)*2654435761, semiring.Weight(i), int32(i))
	}
	if s.len() != n {
		t.Fatalf("len = %d, want %d", s.len(), n)
	}
	if len(s.ctrl)&(len(s.ctrl)-1) != 0 {
		t.Fatalf("ctrl size %d is not a power of two", len(s.ctrl))
	}
	for i := 0; i < n; i++ {
		idx, created, _ := s.relax(uint64(i)*2654435761, semiring.Weight(n+i), -1)
		if created {
			t.Fatalf("entry %d lost after growth", i)
		}
		if s.toks[idx].cost != semiring.Weight(i) {
			t.Fatalf("entry %d: cost %v, want %v", i, s.toks[idx].cost, semiring.Weight(i))
		}
	}
}

// TestTokenStoreReset verifies reuse: reset keeps capacity but drops entries.
func TestTokenStoreReset(t *testing.T) {
	s := newTokenStore()
	for i := 0; i < 5000; i++ {
		s.relax(uint64(i), semiring.Weight(i), -1)
	}
	grown := len(s.ctrl)
	s.reset()
	if s.len() != 0 {
		t.Fatalf("len = %d after reset", s.len())
	}
	if len(s.ctrl) != grown {
		t.Fatalf("reset shrank ctrl from %d to %d", grown, len(s.ctrl))
	}
	if _, created, _ := s.relax(3, 1, -1); !created {
		t.Fatal("key 3 still present after reset")
	}
}

// TestTokenStoreCopyFrom checks rescue snapshots: an exact copy that stays
// intact while the original keeps mutating.
func TestTokenStoreCopyFrom(t *testing.T) {
	src := newTokenStore()
	for i := 0; i < 1000; i++ {
		src.relax(uint64(i)*7919, semiring.Weight(i%17), int32(i))
	}
	dst := newTokenStore()
	dst.copyFrom(src)
	for i := 0; i < 1000; i++ {
		src.relax(uint64(i)*7919, -1000, -1) // clobber the original
	}
	if dst.len() != 1000 {
		t.Fatalf("copy has %d entries, want 1000", dst.len())
	}
	for i := 0; i < 1000; i++ {
		idx, created, _ := dst.relax(uint64(i)*7919, semiring.Zero, -1)
		if created {
			t.Fatalf("copy lost key %d", i)
		}
		if want := semiring.Weight(i % 17); dst.toks[idx].cost != want {
			t.Fatalf("copy entry %d mutated: cost %v, want %v", i, dst.toks[idx].cost, want)
		}
	}
}

// TestStoreBeamPruneMatchesMap drives the store beamPrune and the retained
// map beamPrune with identical random frontiers and asserts identical
// survivor sets, thresholds and cut counts — including histogram capping and
// its (cost, key) tiebreak.
func TestStoreBeamPruneMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := getScratch()
	defer putScratch(sc)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		beam := semiring.Weight(1 + rng.Float32()*20)
		maxActive := 0
		if rng.Intn(2) == 0 {
			maxActive = 1 + rng.Intn(n)
		}
		s := sc.cur
		s.reset()
		m := map[uint64]token{}
		for i := 0; i < n; i++ {
			k := rng.Uint64() % 1000
			c := semiring.Weight(rng.Float32() * 40)
			// Duplicate keys take the min, as a real frontier would.
			s.relax(k, c, int32(i))
			relax(m, k, c, int32(i))
		}
		gotThr, gotCut := sc.beamPrune(s, beam, maxActive)
		wantThr, wantCut := beamPrune(m, beam, maxActive)
		if gotThr != wantThr || gotCut != wantCut {
			t.Fatalf("trial %d: store (thr=%v cut=%d) vs map (thr=%v cut=%d)",
				trial, gotThr, gotCut, wantThr, wantCut)
		}
		if s.len() != len(m) {
			t.Fatalf("trial %d: %d survivors in store, %d in map", trial, s.len(), len(m))
		}
		for i, k := range s.keys {
			mt, ok := m[k]
			if !ok || s.toks[i] != mt {
				t.Fatalf("trial %d: survivor %d mismatch (key %d)", trial, i, k)
			}
		}
	}
}

// TestStoreBeamPruneNaN pins the non-finite parity property: a NaN-cost
// token fails `cost > thr` just as it does in the map implementation, so
// both keep it.
func TestStoreBeamPruneNaN(t *testing.T) {
	nan := semiring.Weight(math.NaN())
	sc := getScratch()
	defer putScratch(sc)
	s := sc.cur
	s.reset()
	m := map[uint64]token{}
	s.relax(1, 0, -1)
	relax(m, 1, 0, -1)
	s.relax(2, nan, -1)
	relax(m, 2, nan, -1)
	s.relax(3, 100, -1)
	relax(m, 3, 100, -1)
	_, gotCut := sc.beamPrune(s, 10, 0)
	_, wantCut := beamPrune(m, 10, 0)
	if gotCut != wantCut || s.len() != len(m) {
		t.Fatalf("NaN parity broken: store cut=%d len=%d, map cut=%d len=%d",
			gotCut, s.len(), wantCut, len(m))
	}
	if s.len() != 2 {
		t.Fatalf("expected NaN token kept alongside best (len=2), got %d", s.len())
	}
}
