package decoder

import "repro/internal/semiring"

// SearchPreset is one (Beam, MaxActive) search operating point. Presets are
// the knob a serving layer turns when load builds up: narrowing the beam
// and the histogram cap trades a little accuracy for a large reduction in
// per-frame work — the inverse of the rescue widening that doubles both
// when a search dies (Config.RescueWidenings).
type SearchPreset struct {
	Beam      semiring.Weight
	MaxActive int
}

// Degradation ladder floors: no preset narrows the search below these, so
// even the most degraded decode still explores a usable beam.
const (
	minDegradedBeam      = semiring.Weight(4)
	minDegradedMaxActive = 64
)

// DegradedPreset returns step level of the config's degradation ladder:
// level 0 is the configured search, and each further level halves both the
// beam and MaxActive, clamped at floors (beam 4, MaxActive 64). Levels past
// the floors return the floor preset, so any non-negative level is valid.
func (c Config) DegradedPreset(level int) SearchPreset {
	c = c.withDefaults()
	p := SearchPreset{Beam: c.Beam, MaxActive: c.MaxActive}
	for ; level > 0; level-- {
		if p.Beam/2 >= minDegradedBeam {
			p.Beam /= 2
		}
		if p.MaxActive > 0 && p.MaxActive/2 >= minDegradedMaxActive {
			p.MaxActive /= 2
		}
	}
	return p
}

// SetSearchPreset overrides the decoder's Beam and MaxActive for subsequent
// Decode/DecodeContext calls and newly created Streams. It must not be
// called while a decode is in flight on this decoder — the pool applies
// presets to a worker only while it holds that worker, and a server applies
// them to a per-connection stream decoder before the stream starts. Lookup
// strategy, pruning mode and rescue behaviour are unchanged; rescue
// widenings double from the preset's values.
func (d *OnTheFly) SetSearchPreset(p SearchPreset) { d.preset = &p }

// ClearSearchPreset restores the configured Beam/MaxActive.
func (d *OnTheFly) ClearSearchPreset() { d.preset = nil }

// searchParams resolves the effective beam and histogram cap: the installed
// preset when one is set, the configuration otherwise.
func (d *OnTheFly) searchParams() (semiring.Weight, int) {
	if d.preset != nil {
		return d.preset.Beam, d.preset.MaxActive
	}
	return d.cfg.Beam, d.cfg.MaxActive
}
