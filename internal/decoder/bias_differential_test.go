package decoder

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/bias"
	"repro/internal/task"
)

// The nil-bias invariant wall: installing an EMPTY bias machine (one root
// state, zero weight everywhere) must be byte-identical to installing no
// machine at all — same hypotheses, same cost bits, same lattices, same
// search statistics, same per-frame frontier contents in the same order —
// across the seeded task×config matrix and every decode path (solo batch,
// stream, lanes, pipeline lookahead). The empty machine runs the REAL
// three-way composition code (26/26/12 keys, Advance on every emitted word,
// bias final weights), so any drift the bias seam introduces in packing,
// pruning order or weight arithmetic shows up here as a frame-level diff
// against both the nil decoder and the retained two-layer reference.

// numLookup resolves phrase words written as decimal word IDs ("3 17"),
// letting decoder-level tests build machines without a written lexicon.
func numLookup(w string) (int32, bool) {
	id, err := strconv.Atoi(w)
	if err != nil || id < 1 {
		return 0, false
	}
	return int32(id), true
}

func emptyBiasMachine(t testing.TB) *bias.Machine {
	t.Helper()
	m, err := bias.Compile(nil, 0, numLookup)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumStates() != 1 || m.MaxBonus() != 0 {
		t.Fatalf("empty machine not identity: %d states, MaxBonus %v", m.NumStates(), m.MaxBonus())
	}
	return m
}

// normSnap is a frame frontier with keys unpacked into component states, so
// frontiers captured under different key packings (32/32 nil vs 26/26/12
// biased) compare structurally.
type normSnap struct {
	frame int
	ams   []int32
	lms   []int32
	bss   []int32
	toks  []token
}

func captureNormFrames(d *OnTheFly) *[]normSnap {
	snaps := &[]normSnap{}
	d.frameHook = func(frame int, keys []uint64, toks []token) {
		s := normSnap{frame: frame, toks: append([]token(nil), toks...)}
		for _, k := range keys {
			am, lm, bs := d.unpack(k)
			s.ams = append(s.ams, int32(am))
			s.lms = append(s.lms, int32(lm))
			s.bss = append(s.bss, int32(bs))
		}
		*snaps = append(*snaps, s)
	}
	return snaps
}

func compareNormSnaps(t *testing.T, got, want []normSnap) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("captured %d frontiers (biased) vs %d (nil)", len(got), len(want))
		return
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.frame != w.frame {
			t.Errorf("snapshot %d: frame %d (biased) vs %d (nil)", i, g.frame, w.frame)
			return
		}
		if len(g.ams) != len(w.ams) {
			t.Errorf("frame %d: %d tokens (biased) vs %d (nil)", g.frame, len(g.ams), len(w.ams))
			return
		}
		for j := range g.ams {
			if g.ams[j] != w.ams[j] || g.lms[j] != w.lms[j] || g.bss[j] != 0 ||
				g.toks[j] != w.toks[j] {
				t.Errorf("frame %d entry %d: biased (am %d, lm %d, bias %d, %+v) vs nil (am %d, lm %d, %+v)",
					g.frame, j, g.ams[j], g.lms[j], g.bss[j], g.toks[j], w.ams[j], w.lms[j], w.toks[j])
				return
			}
		}
	}
}

func compareResults(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Errorf("%s cost: %v vs %v", label, got.Cost, want.Cost)
	}
	if got.ReachedFinal != want.ReachedFinal {
		t.Errorf("%s finality: %v vs %v", label, got.ReachedFinal, want.ReachedFinal)
	}
	if !equalInt32s(got.Words, want.Words) {
		t.Errorf("%s words: %v vs %v", label, got.Words, want.Words)
	}
	if !equalInt32s(got.WordEnds, want.WordEnds) {
		t.Errorf("%s word ends: %v vs %v", label, got.WordEnds, want.WordEnds)
	}
	if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
		t.Errorf("%s stats: %+v vs %+v", label, gs, ws)
	}
}

// TestDifferentialNilVsEmptyBiasSolo sweeps the seeded task×config matrix:
// the empty-bias decode must match the nil-bias decode frame for frame, and
// both must match the retained two-layer reference decoder.
func TestDifferentialNilVsEmptyBiasSolo(t *testing.T) {
	seeds := []int64{221, 222, 223, 224}
	total := 0
	for _, seed := range seeds {
		tk, err := task.Build(task.Spec{
			Name:           fmt.Sprintf("bias-diff-%d", seed),
			Vocab:          24,
			Phones:         10,
			TrainSentences: 160,
			TestUtterances: 1,
			LMMinCount:     2,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		scores := tk.Scorer.ScoreUtterance(tk.Test[0].Frames)
		for _, tc := range diffConfigs {
			total++
			t.Run(fmt.Sprintf("seed%d/%s", seed, tc.name), func(t *testing.T) {
				in := scores
				if tc.cfg.RescueWidenings > 0 && len(in) > 2 {
					in = poisonFrame(in, len(in)/2)
				}
				dNil, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				dEmpty, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := dEmpty.SetBias(emptyBiasMachine(t)); err != nil {
					t.Fatal(err)
				}
				dRef, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				nilSnaps := captureNormFrames(dNil)
				emptySnaps := captureNormFrames(dEmpty)

				rNil := dNil.Decode(in)
				rEmpty := dEmpty.Decode(in)
				rRef := dRef.DecodeReference(in)

				compareResults(t, "empty-bias vs nil", rEmpty, rNil)
				compareResults(t, "nil vs reference", rNil, rRef)
				compareNormSnaps(t, *emptySnaps, *nilSnaps)
			})
		}
	}
	if total < 25 {
		t.Fatalf("bias differential sweep shrank to %d cases; keep it at 25+", total)
	}
}

// TestDifferentialNilVsEmptyBiasStream pushes the same frames through nil-
// and empty-bias streams: the incremental path seeds its frontier through
// startKey and shares stepFrame, so it must stay identical too.
func TestDifferentialNilVsEmptyBiasStream(t *testing.T) {
	f := getFixture(t, 42)
	for _, tc := range diffConfigs {
		if tc.cfg.RescueWidenings > 0 {
			continue // streams have no rescue snapshots
		}
		t.Run(tc.name, func(t *testing.T) {
			dNil, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			dEmpty, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := dEmpty.SetBias(emptyBiasMachine(t)); err != nil {
				t.Fatal(err)
			}
			for i, scores := range f.scores {
				sNil, sEmpty := dNil.NewStream(), dEmpty.NewStream()
				for _, frame := range scores {
					if err := sNil.Push(frame); err != nil {
						t.Fatal(err)
					}
					if err := sEmpty.Push(frame); err != nil {
						t.Fatal(err)
					}
					if !equalInt32s(sEmpty.Partial(), sNil.Partial()) {
						t.Fatalf("utt %d: partials diverge: %v vs %v", i, sEmpty.Partial(), sNil.Partial())
					}
				}
				compareResults(t, fmt.Sprintf("utt %d stream", i), sEmpty.Finish(), sNil.Finish())
			}
		})
	}
}

// TestDifferentialNilVsEmptyBiasLanes drives empty-bias decoders through a
// batched lane group (slot recycling included: utterances outnumber lanes)
// against solo nil-bias decodes.
func TestDifferentialNilVsEmptyBiasLanes(t *testing.T) {
	tk, err := task.Build(task.Spec{
		Name:           "bias-lane-diff",
		Vocab:          24,
		Phones:         10,
		TrainSentences: 160,
		TestUtterances: 5,
		LMMinCount:     2,
		Seed:           225,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range diffConfigs {
		if tc.cfg.RescueWidenings > 0 {
			continue // lanes ride the stream path, which has no rescue snapshots
		}
		t.Run(tc.name, func(t *testing.T) {
			solo := make([]*Result, len(tk.Test))
			for i, u := range tk.Test {
				d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				solo[i] = d.Decode(tk.Scorer.ScoreUtterance(u.Frames))
			}

			g, err := NewLaneGroup(tk.Scorer, 2)
			if err != nil {
				t.Fatal(err)
			}
			laneRes := make([]*Result, len(tk.Test))
			lanes := map[*Lane]int{}
			next := 0
			for next < len(tk.Test) || len(lanes) > 0 {
				for next < len(tk.Test) && g.Active() < g.Width() {
					d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := d.SetBias(emptyBiasMachine(t)); err != nil {
						t.Fatal(err)
					}
					l, err := g.Join(d)
					if err != nil {
						t.Fatal(err)
					}
					l.Push(tk.Test[next].Frames)
					lanes[l] = next
					next++
				}
				g.Step()
				for l, utt := range lanes {
					if l.Pending() == 0 {
						laneRes[utt] = l.Finish()
						delete(lanes, l)
					}
				}
			}
			for i := range tk.Test {
				if laneRes[i] == nil {
					t.Fatalf("utt %d: no lane result", i)
				}
				compareResults(t, fmt.Sprintf("utt %d lanes", i), laneRes[i], solo[i])
			}
		})
	}
}

// TestDifferentialNilVsEmptyBiasPipeline runs empty-bias decoders behind the
// score-ahead pipeline at several lookahead depths against synchronous
// nil-bias decodes, frontiers included.
func TestDifferentialNilVsEmptyBiasPipeline(t *testing.T) {
	f := getFixture(t, 42)
	for _, tc := range diffConfigs {
		for _, k := range []int{4, 16} {
			t.Run(fmt.Sprintf("%s/k%d", tc.name, k), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Lookahead = k
				dEmpty, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := dEmpty.SetBias(emptyBiasMachine(t)); err != nil {
					t.Fatal(err)
				}
				p, err := NewPipeline(dEmpty, f.tk.Scorer)
				if err != nil {
					t.Fatal(err)
				}
				defer p.Close()
				dNil, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i, u := range f.tk.Test {
					in := f.scores[i]
					frames := u.Frames
					if tc.cfg.RescueWidenings > 0 && len(in) > 2 {
						in = poisonFrame(in, len(in)/2)
						// The pipeline scores features itself, so poison the
						// sync path only when both see the same rows.
						continue
					}
					emptySnaps := captureNormFrames(dEmpty)
					nilSnaps := captureNormFrames(dNil)
					rEmpty := p.Decode(frames)
					rNil := dNil.Decode(in)
					compareResults(t, fmt.Sprintf("utt %d pipeline", i), rEmpty, rNil)
					compareNormSnaps(t, *emptySnaps, *nilSnaps)
				}
			})
		}
	}
}

// TestBiasedDecodeAgreesAcrossPaths locks the biased (non-empty machine)
// decode itself: the same utterance with the same installed machine must
// produce byte-identical results through solo batch, stream, lane and
// pipelined decodes — biasing changes WHAT wins, never path determinism.
func TestBiasedDecodeAgreesAcrossPaths(t *testing.T) {
	f := getFixture(t, 42)
	// Bias toward the reference words of utterance 0 so the machine
	// actually advances off its root during the decode.
	var phrase string
	for _, w := range f.tk.Test[0].Words {
		if phrase != "" {
			phrase += " "
		}
		phrase += strconv.Itoa(int(w))
	}
	m, err := bias.Compile([]string{phrase}, 1.5, numLookup)
	if err != nil {
		t.Fatal(err)
	}
	if m.Phrases() != 1 {
		t.Fatalf("phrase %q did not compile", phrase)
	}

	mk := func(lookahead int) *OnTheFly {
		cfg := Config{PreemptivePruning: true, Lookahead: lookahead}
		d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SetBias(m); err != nil {
			t.Fatal(err)
		}
		return d
	}

	want := mk(0).Decode(f.scores[0])

	s := mk(0).NewStream()
	for _, frame := range f.scores[0] {
		if err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	compareResults(t, "biased stream vs solo", s.Finish(), want)

	g, err := NewLaneGroup(f.tk.Scorer, 2)
	if err != nil {
		t.Fatal(err)
	}
	l, err := g.Join(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	l.Push(f.tk.Test[0].Frames)
	for g.Step() > 0 {
	}
	compareResults(t, "biased lane vs solo", l.Finish(), want)

	p, err := NewPipeline(mk(8), f.tk.Scorer)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	compareResults(t, "biased pipeline vs solo", p.Decode(f.tk.Test[0].Frames), want)
}
