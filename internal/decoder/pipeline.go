package decoder

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/acoustic"
	"repro/internal/metrics"
	"repro/internal/semiring"
)

// Pipeline decouples acoustic scoring from Viterbi search — the asynchronous
// decoder shape of Lv et al. (PAPERS.md): a producer stage scores feature
// frames up to Lookahead frames ahead of the search and a consumer stage
// (the caller's goroutine) runs the tokenStore frontier step, connected by a
// bounded single-producer/single-consumer ring of preallocated score rows.
// Scoring batches whole lookahead windows per scorer call
// (acoustic.WindowScorer), so on the dense DNN/RNN scorers the pipeline buys
// twice: the window batching fills the FPU pipeline with four frames' dot
// chains per weight row (the dot4 economics of batch.go), and the score-ahead
// overlap hides scoring latency behind search on multi-core hosts.
//
// Why SPSC: exactly one goroutine (the producer, spawned at construction)
// writes score rows and advances the ring tail, and exactly one (whichever
// goroutine calls Decode/Push — the Pipeline is single-utterance, not
// thread-safe) consumes rows and advances the head. With a single writer and
// a single reader the ring needs no per-row synchronization — one mutex+cond
// pair covers the head/tail indices, and rows are handed over by index, never
// copied or reallocated. Steady state allocates nothing: the ring rows, the
// window gather buffers and the scorer's window state are all preallocated
// at construction.
//
// Determinism contract: results are byte-identical to the synchronous path
// (score everything with ScoreUtterance, then Decode) at any Lookahead — the
// scorer rows are bitwise-identical (window.go), and the search consumes
// them in frame order through exactly the decode loop otf.go runs. Lookahead
// 0 short-circuits to that synchronous path itself. The differential oracle,
// fuzzer and golden replays in pipeline_test.go lock both halves down.
//
// Cancellation drains cleanly through the PR-2 seams: a context cancellation
// (or a recovered scorer panic on the producer) surfaces as the usual
// partial-result-plus-error, and reset invalidates any in-flight window via
// a generation counter, so an aborted utterance can never leak stale rows
// into the next one.
type Pipeline struct {
	d  *OnTheFly
	sc acoustic.Scorer
	ws acoustic.WindowScorer // nil iff k == 0
	k  int

	state acoustic.LaneState // window state: recurrence + per-window scratch

	mu   sync.Mutex
	cond *sync.Cond
	// Utterance state, guarded by mu.
	feats    [][]float32 // submitted feature frames (aliased, not copied)
	scored   int         // frames the producer has scored so far
	searched int         // frames the consumer has released so far
	gen      int         // utterance generation; a bump discards in-flight windows
	scoring  bool        // producer is inside a ScoreWindow call (mu released)
	closed   bool
	err      error // recovered scorer panic; sticky until the next utterance

	// The lookahead ring: k preallocated score rows between the stages.
	// rows[rHead] is the next row the search consumes; rCount rows are
	// scored-but-unsearched. Only the consumer moves rHead, only the
	// producer grows rCount.
	rows   [][]float32
	rHead  int
	rCount int

	fbuf, obuf [][]float32 // producer's window gather scratch

	done chan struct{} // producer goroutine exited
}

// NewPipeline builds a score-ahead pipeline over decoder d and the given
// scorer, with the lookahead depth taken from d's Config.Lookahead. Depth 0
// degenerates to the synchronous path (no producer goroutine, no ring);
// depth > 0 requires the scorer to implement acoustic.WindowScorer, which
// all repo scorers do. Close must be called when a depth > 0 pipeline is no
// longer needed, or its producer goroutine leaks.
func NewPipeline(d *OnTheFly, scorer acoustic.Scorer) (*Pipeline, error) {
	k := d.cfg.Lookahead
	if k < 0 {
		return nil, fmt.Errorf("decoder: negative pipeline lookahead %d", k)
	}
	p := &Pipeline{d: d, sc: scorer, k: k}
	if k == 0 {
		return p, nil
	}
	ws, ok := scorer.(acoustic.WindowScorer)
	if !ok {
		return nil, fmt.Errorf("decoder: scorer %s does not support window scoring (lookahead %d)", scorer.Name(), k)
	}
	p.ws = ws
	p.state = ws.NewWindowState(k)
	p.rows = make([][]float32, k)
	for i := range p.rows {
		p.rows[i] = make([]float32, ws.ScoreDim())
	}
	p.fbuf = make([][]float32, k)
	p.obuf = make([][]float32, k)
	p.cond = sync.NewCond(&p.mu)
	p.done = make(chan struct{})
	go p.produce()
	return p, nil
}

// Lookahead reports the pipeline depth (0 = synchronous).
func (p *Pipeline) Lookahead() int { return p.k }

// produce is the scoring stage: it waits for submitted frames and ring
// space, gathers the largest window both allow, scores it in one
// WindowScorer call with the mutex released, and publishes the rows by
// advancing rCount. A generation mismatch after scoring means the utterance
// was reset mid-window; the rows are discarded unpublished.
func (p *Pipeline) produce() {
	defer close(p.done)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		for !p.closed && (p.err != nil || p.scored >= len(p.feats) || p.rCount >= p.k) {
			p.cond.Wait()
		}
		if p.closed {
			return
		}
		w := len(p.feats) - p.scored
		if free := p.k - p.rCount; w > free {
			w = free
		}
		slot := p.rHead + p.rCount
		for i := 0; i < w; i++ {
			p.fbuf[i] = p.feats[p.scored+i]
			p.obuf[i] = p.rows[(slot+i)%p.k]
		}
		gen := p.gen
		p.scoring = true
		p.mu.Unlock()
		err := p.scoreWindow(p.fbuf[:w], p.obuf[:w])
		p.mu.Lock()
		p.scoring = false
		if p.gen == gen {
			if err != nil {
				p.err = err
			} else {
				p.scored += w
				p.rCount += w
			}
		}
		p.cond.Broadcast()
	}
}

// scoreWindow runs one window through the scorer with panic containment: a
// panicking scorer (poisoned weights, fault injection) must fail the
// utterance with an error, not crash the process from a bare goroutine.
func (p *Pipeline) scoreWindow(frames, out [][]float32) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("decoder: pipeline scorer panic: %v", r)
		}
	}()
	p.ws.ScoreWindow(p.state, frames, out)
	return nil
}

// submit hands feature frames to the scoring stage. The slices are aliased,
// not copied; callers must not mutate them until the utterance finishes.
func (p *Pipeline) submit(frames [][]float32) {
	p.mu.Lock()
	p.feats = append(p.feats, frames...)
	p.cond.Broadcast()
	p.mu.Unlock()
}

// nextRow blocks until the ring holds the next scored row and returns it.
// The row stays valid until releaseRow. The caller must have submitted more
// frames than it has released, or nextRow deadlocks. A sticky producer error
// is returned once all rows scored before the failure are consumed.
func (p *Pipeline) nextRow() ([]float32, error) {
	tel := p.d.cfg.Telemetry
	p.mu.Lock()
	if p.rCount == 0 && p.err == nil {
		tel.countStall()
		for p.rCount == 0 && p.err == nil {
			p.cond.Wait()
		}
	}
	if p.rCount == 0 {
		err := p.err
		p.mu.Unlock()
		return nil, err
	}
	row := p.rows[p.rHead]
	lead := p.rCount
	p.mu.Unlock()
	tel.observeScoreLead(lead)
	return row, nil
}

// releaseRow returns the row obtained from the last nextRow to the producer.
func (p *Pipeline) releaseRow() {
	p.mu.Lock()
	p.rHead = (p.rHead + 1) % p.k
	p.rCount--
	p.searched++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// reset re-arms the pipeline for a fresh utterance: it invalidates any
// window the producer is scoring right now (generation bump — the producer
// discards the rows unpublished), waits the in-flight call out so the scorer
// state is quiescent, then clears the queue, the ring, the sticky error and
// the scorer's recurrence. This is both the start-of-utterance path and the
// cancellation drain: after reset the ring holds nothing from the previous
// utterance.
func (p *Pipeline) reset() {
	if p.k == 0 {
		return
	}
	p.mu.Lock()
	p.gen++
	for p.scoring {
		p.cond.Wait()
	}
	p.feats = p.feats[:0]
	p.scored, p.searched = 0, 0
	p.rHead, p.rCount = 0, 0
	p.err = nil
	p.state.Reset()
	p.mu.Unlock()
}

// Close stops the producer goroutine and waits for it to exit. Safe to call
// more than once; a no-op at lookahead 0. The Pipeline must not be used
// afterwards.
func (p *Pipeline) Close() {
	if p.k == 0 {
		return
	}
	p.mu.Lock()
	p.gen++
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.done
}

// Decode scores and searches one utterance of feature frames.
func (p *Pipeline) Decode(frames [][]float32) *Result {
	res, _ := p.DecodeContext(context.Background(), frames)
	return res
}

// DecodeContext is Decode with deadline/cancellation semantics, mirroring
// OnTheFly.DecodeContext: the context is checked once per frame, and on
// cancellation the best partial hypothesis is returned with ctx.Err(). At
// lookahead 0 this IS the synchronous path: one ScoreUtterance call, then
// the ordinary decode. At lookahead > 0 the same search loop runs against
// ring rows while the producer scores ahead; results are byte-identical.
func (p *Pipeline) DecodeContext(ctx context.Context, frames [][]float32) (*Result, error) {
	if p.k == 0 {
		return p.d.DecodeContext(ctx, p.sc.ScoreUtterance(frames))
	}
	tel := p.d.cfg.Telemetry
	start := tel.now()
	sp := tel.startSpan("pipeline")
	a0 := metrics.ReadAllocCounters()
	res, err := p.decode(ctx, frames)
	res.Stats.recordAlloc(a0)
	tel.recordDecode(res.Stats, start, sp)
	return res, err
}

// decode is the pipelined DecodeContext body: otf.go's decode loop, with
// scores[f] replaced by a blocking ring read. Every branch — the per-frame
// context check, the rescue snapshot and widening retries (the held row
// stays valid across retries), the unsearchable-frame skip, the search-death
// return — keeps the exact order and Stats accounting of the synchronous
// loop, which is what makes the two paths byte-identical.
func (p *Pipeline) decode(ctx context.Context, frames [][]float32) (*Result, error) {
	d := p.d
	cfg := d.cfg
	tel := cfg.Telemetry
	p.reset()
	p.submit(frames)
	sc := getScratch()
	defer putScratch(sc)
	lat := &sc.lat
	lat.reset()
	st := Stats{Frames: len(frames)}

	cur, next, snap := sc.cur, sc.next, sc.snap
	cur.reset()
	cur.relax(d.startKey(), semiring.One, -1)
	d.epsClosure(cur, lat, &st, semiring.Zero, -1, sc)
	d.hook(-1, cur)

	for f := range frames {
		if err := ctx.Err(); err != nil {
			st.Frames = f // frames actually searched
			p.reset()     // drain: discard in-flight and queued scoring work
			return d.finish(cur, lat, st), err
		}
		row, err := p.nextRow()
		if err != nil {
			st.Frames = f
			p.reset()
			return d.finish(cur, lat, st), err
		}
		if cfg.RescueWidenings > 0 {
			snap.copyFrom(cur)
		}
		beam, maxActive := d.searchParams()
		d.stepFrame(cur, next, row, beam, maxActive, lat, &st, f, sc)
		for attempt := 0; next.len() == 0 && attempt < cfg.RescueWidenings; attempt++ {
			st.Rescues++
			beam *= 2
			if maxActive > 0 {
				maxActive *= 2
			}
			cur.copyFrom(snap)
			d.stepFrame(cur, next, row, beam, maxActive, lat, &st, f, sc)
		}
		p.releaseRow()
		if next.len() == 0 {
			st.SearchFailures++
			if cfg.RescueWidenings > 0 {
				cur.copyFrom(snap)
				d.hook(f, cur)
				tel.observeFrontier(cur.len())
				continue
			}
			p.reset() // the search died; frames still in flight are moot
			return d.finish(cur, lat, st), nil
		}
		cur, next = next, cur
		d.hook(f, cur)
		tel.observeFrontier(cur.len())
	}
	return d.finish(cur, lat, st), nil
}

// PipeStream is the incremental interface over a Pipeline — Stream semantics
// with scoring folded in: Push takes feature frames (not score rows), hands
// them to the scoring stage, and advances the search over every frame pushed
// so far before returning. Within one Push the stages overlap (the producer
// scores frame t+1..t+k while the search steps frame t); across Push calls
// the search is fully caught up, so configuration applied between pushes — a
// DegradedPreset, say — takes effect at a deterministic frame boundary,
// exactly as it does on a plain Stream.
//
// At lookahead 0 Push scores each chunk with one synchronous ScoreUtterance
// call, byte-identical to the pre-pipeline solo streaming path (for the RNN
// that path restarts the recurrence each chunk — the documented chunked-
// stream trade-off). At lookahead > 0 the window state carries the
// recurrence across pushes, matching the batch and lane semantics instead.
type PipeStream struct {
	p *Pipeline
	s *Stream
}

// NewStream starts an incremental pipelined decode. Only one stream (or
// batch decode) may be active on a Pipeline at a time; starting a new one
// abandons any unfinished predecessor.
func (p *Pipeline) NewStream() *PipeStream {
	p.reset()
	return &PipeStream{p: p, s: p.d.NewStream()}
}

// Push submits feature frames and advances the search over everything
// submitted so far. The frame slices are aliased until the utterance ends.
func (ps *PipeStream) Push(frames [][]float32) error {
	p := ps.p
	if p.k == 0 {
		for _, row := range p.sc.ScoreUtterance(frames) {
			if err := ps.s.Push(row); err != nil {
				return err
			}
		}
		return nil
	}
	p.submit(frames)
	return ps.drain()
}

// drain steps the search until it has consumed every submitted frame. A dead
// stream keeps consuming rows (its Push is a no-op), so the ring never
// wedges on a failed search.
func (ps *PipeStream) drain() error {
	p := ps.p
	for {
		p.mu.Lock()
		pending := len(p.feats) - p.searched
		p.mu.Unlock()
		if pending == 0 {
			return nil
		}
		row, err := p.nextRow()
		if err != nil {
			return err
		}
		serr := ps.s.Push(row)
		p.releaseRow()
		if serr != nil {
			return serr
		}
	}
}

// Partial returns the current best hypothesis without ending the stream.
func (ps *PipeStream) Partial() []int32 { return ps.s.Partial() }

// Finish ends the utterance and returns the final result, identical to a
// batch decode over the same frames. The error is non-nil only when the
// scoring stage failed mid-utterance; the result then covers the frames
// searched before the failure.
func (ps *PipeStream) Finish() (*Result, error) {
	var err error
	if ps.p.k > 0 {
		err = ps.drain()
		ps.p.reset()
	}
	return ps.s.Finish(), err
}

// Abort abandons the utterance without a result, draining the scoring stage.
func (ps *PipeStream) Abort() { ps.p.reset() }
