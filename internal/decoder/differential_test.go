package decoder

import (
	"fmt"
	"testing"

	"repro/internal/task"
)

// frameSnap is one captured frontier: the token set after the initial
// epsilon closure (frame -1) or after a decoded frame, in iteration order.
type frameSnap struct {
	frame int
	keys  []uint64
	toks  []token
}

// captureFrames installs a frameHook on d that deep-copies every reported
// frontier.
func captureFrames(d *OnTheFly) *[]frameSnap {
	snaps := &[]frameSnap{}
	d.frameHook = func(frame int, keys []uint64, toks []token) {
		*snaps = append(*snaps, frameSnap{
			frame: frame,
			keys:  append([]uint64(nil), keys...),
			toks:  append([]token(nil), toks...),
		})
	}
	return snaps
}

// diffConfigs are the search configurations the differential harness sweeps:
// every pruning and lookup feature that touches the frontier code paths.
var diffConfigs = []struct {
	name string
	cfg  Config
}{
	{"default", Config{}},
	{"preemptive", Config{PreemptivePruning: true}},
	{"tight-histogram", Config{MaxActive: 12}},
	{"tight-beam", Config{Beam: 6}},
	{"binary-lookup", Config{Lookup: LookupBinary, PreemptivePruning: true}},
	{"linear-lookup", Config{Lookup: LookupLinear}},
	{"rescue", Config{Beam: 6, RescueWidenings: 3}},
}

// TestDifferentialStoreVsReference is the differential property test locking
// down the zero-allocation frontier: across seeded synthetic tasks and every
// config above, Decode (tokenStore path) and DecodeReference (retained map
// frontier) must agree exactly — hypotheses, word end frames, cost bits,
// finality, search statistics, and the entire per-frame token frontier
// including iteration order. Any divergence in the store's hashing, growth,
// pruning compaction or closure ordering shows up here as a frame-level diff.
func TestDifferentialStoreVsReference(t *testing.T) {
	seeds := []int64{201, 202, 203, 204, 205, 206, 207, 208}
	total := 0
	for _, seed := range seeds {
		tk, err := task.Build(task.Spec{
			Name:           fmt.Sprintf("diff-%d", seed),
			Vocab:          24,
			Phones:         10,
			TrainSentences: 160,
			TestUtterances: 1,
			LMMinCount:     2,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		scores := tk.Scorer.ScoreUtterance(tk.Test[0].Frames)
		for _, tc := range diffConfigs {
			total++
			t.Run(fmt.Sprintf("seed%d/%s", seed, tc.name), func(t *testing.T) {
				in := scores
				if tc.cfg.RescueWidenings > 0 && len(in) > 2 {
					// Poison one frame so the rescue/skip machinery runs on
					// both implementations.
					in = poisonFrame(in, len(in)/2)
				}
				// Separate decoder instances: the offset memo persists across
				// utterances, so sharing one would skew hit/miss statistics
				// between the two runs.
				dStore, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				dRef, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
				if err != nil {
					t.Fatal(err)
				}
				storeSnaps := captureFrames(dStore)
				refSnaps := captureFrames(dRef)

				got := dStore.Decode(in)
				want := dRef.DecodeReference(in)

				if got.Cost != want.Cost {
					t.Errorf("cost: store %v, reference %v", got.Cost, want.Cost)
				}
				if got.ReachedFinal != want.ReachedFinal {
					t.Errorf("finality: store %v, reference %v", got.ReachedFinal, want.ReachedFinal)
				}
				if !equalInt32s(got.Words, want.Words) {
					t.Errorf("words: store %v, reference %v", got.Words, want.Words)
				}
				if !equalInt32s(got.WordEnds, want.WordEnds) {
					t.Errorf("word ends: store %v, reference %v", got.WordEnds, want.WordEnds)
				}
				if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
					t.Errorf("stats: store %+v, reference %+v", gs, ws)
				}
				compareSnaps(t, *storeSnaps, *refSnaps)
			})
		}
	}
	if total < 50 {
		t.Fatalf("differential sweep shrank to %d cases; keep it at 50+", total)
	}
}

// TestDifferentialStreamVsReference checks the incremental path through the
// same oracle: a Stream fed frame by frame must finish with the reference
// result.
func TestDifferentialStreamVsReference(t *testing.T) {
	f := getFixture(t, 42)
	for _, tc := range diffConfigs {
		if tc.cfg.RescueWidenings > 0 {
			continue // streams have no rescue snapshots
		}
		t.Run(tc.name, func(t *testing.T) {
			dStream, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			dRef, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, scores := range f.scores {
				s := dStream.NewStream()
				for _, frame := range scores {
					if err := s.Push(frame); err != nil {
						t.Fatal(err)
					}
				}
				got := s.Finish()
				want := dRef.DecodeReference(scores)
				if got.Cost != want.Cost || !equalInt32s(got.Words, want.Words) {
					t.Errorf("utt %d: stream (%v, %v) vs reference (%v, %v)",
						i, got.Words, got.Cost, want.Words, want.Cost)
				}
				if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
					t.Errorf("utt %d stats: stream %+v, reference %+v", i, gs, ws)
				}
			}
		})
	}
}

// TestDifferentialLanesVsSolo is the lane-vs-solo oracle: across seeded
// tasks, every non-rescue search configuration, and several lane widths,
// utterances decoded through a batched lane group (features scored by the
// lockstep ScoreStep, frontiers stepped per lane) must match solo decodes
// byte-for-byte — hypotheses, word end frames, cost bits, finality, search
// statistics including lattice-entry counts, and the entire per-frame token
// frontier (keys, costs, lattice indices, iteration order) captured through
// the frameHook seam. Utterances outnumber lanes, so slot recycling and
// mid-flight admission are on the oracle's path, not just first joins.
func TestDifferentialLanesVsSolo(t *testing.T) {
	seeds := []int64{211, 212}
	widths := []int{1, 2, 4}
	total := 0
	for _, seed := range seeds {
		tk, err := task.Build(task.Spec{
			Name:           fmt.Sprintf("lane-diff-%d", seed),
			Vocab:          24,
			Phones:         10,
			TrainSentences: 160,
			TestUtterances: 5,
			LMMinCount:     2,
			Seed:           seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range diffConfigs {
			if tc.cfg.RescueWidenings > 0 {
				continue // lanes ride the stream path, which has no rescue snapshots
			}
			for _, width := range widths {
				total++
				t.Run(fmt.Sprintf("seed%d/%s/width%d", seed, tc.name, width), func(t *testing.T) {
					// Solo baseline: a fresh decoder per utterance (memo cold),
					// frontiers captured per frame.
					type soloRun struct {
						res   *Result
						snaps *[]frameSnap
					}
					solo := make([]soloRun, len(tk.Test))
					for i, u := range tk.Test {
						d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
						if err != nil {
							t.Fatal(err)
						}
						snaps := captureFrames(d)
						solo[i] = soloRun{res: d.Decode(tk.Scorer.ScoreUtterance(u.Frames)), snaps: snaps}
					}

					// Lane run: continuous admission through one group; each
					// utterance gets its own fresh decoder (same memo story as
					// the baseline) with its own frontier capture.
					g, err := NewLaneGroup(tk.Scorer, width)
					if err != nil {
						t.Fatal(err)
					}
					laneSnaps := make([]*[]frameSnap, len(tk.Test))
					laneRes := make([]*Result, len(tk.Test))
					lanes := map[*Lane]int{}
					next := 0
					for next < len(tk.Test) || len(lanes) > 0 {
						for next < len(tk.Test) && g.Active() < g.Width() {
							d, err := NewOnTheFly(tk.AM.G, tk.LMGraph.G, tc.cfg)
							if err != nil {
								t.Fatal(err)
							}
							laneSnaps[next] = captureFrames(d)
							l, err := g.Join(d)
							if err != nil {
								t.Fatal(err)
							}
							l.Push(tk.Test[next].Frames)
							lanes[l] = next
							next++
						}
						g.Step()
						for l, utt := range lanes {
							if l.Pending() == 0 {
								laneRes[utt] = l.Finish()
								delete(lanes, l)
							}
						}
					}

					for i := range tk.Test {
						got, want := laneRes[i], solo[i].res
						if got == nil {
							t.Fatalf("utt %d: no lane result", i)
						}
						if got.Cost != want.Cost {
							t.Errorf("utt %d cost: lane %v, solo %v", i, got.Cost, want.Cost)
						}
						if got.ReachedFinal != want.ReachedFinal {
							t.Errorf("utt %d finality: lane %v, solo %v", i, got.ReachedFinal, want.ReachedFinal)
						}
						if !equalInt32s(got.Words, want.Words) {
							t.Errorf("utt %d words: lane %v, solo %v", i, got.Words, want.Words)
						}
						if !equalInt32s(got.WordEnds, want.WordEnds) {
							t.Errorf("utt %d word ends: lane %v, solo %v", i, got.WordEnds, want.WordEnds)
						}
						if gs, ws := got.Stats.Search(), want.Stats.Search(); gs != ws {
							t.Errorf("utt %d stats: lane %+v, solo %+v", i, gs, ws)
						}
						compareSnaps(t, *laneSnaps[i], *solo[i].snaps)
					}
				})
			}
		}
	}
	if total < 30 {
		t.Fatalf("lane differential sweep shrank to %d cases; keep it at 30+", total)
	}
}

func compareSnaps(t *testing.T, got, want []frameSnap) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("captured %d frontiers (store) vs %d (reference)", len(got), len(want))
		return
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.frame != w.frame {
			t.Errorf("snapshot %d: frame %d (store) vs %d (reference)", i, g.frame, w.frame)
			return
		}
		if len(g.keys) != len(w.keys) {
			t.Errorf("frame %d: %d tokens (store) vs %d (reference)", g.frame, len(g.keys), len(w.keys))
			return
		}
		for j := range g.keys {
			if g.keys[j] != w.keys[j] || g.toks[j] != w.toks[j] {
				t.Errorf("frame %d entry %d: store (key %d, %+v) vs reference (key %d, %+v)",
					g.frame, j, g.keys[j], g.toks[j], w.keys[j], w.toks[j])
				return
			}
		}
	}
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
