package decoder

import (
	"context"
	"math"
	"testing"
)

// poisonFrame returns a copy of scores with frame f's row replaced by NaN —
// an unsearchable frame: every emission cost is non-finite, so the active
// set empties no matter how wide the beam.
func poisonFrame(scores [][]float32, f int) [][]float32 {
	out := make([][]float32, len(scores))
	copy(out, scores)
	row := make([]float32, len(scores[f]))
	for i := range row {
		row[i] = float32(math.NaN())
	}
	out[f] = row
	return out
}

// TestSearchDeathTruncates: with rescue disabled, an unsearchable frame
// kills the search; the decoder must return the best partial hypothesis and
// count the failure rather than propagate NaN or panic.
func TestSearchDeathTruncates(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	clean := d.Decode(f.scores[0])
	poisoned := poisonFrame(f.scores[0], len(f.scores[0])/2)
	r := d.Decode(poisoned)
	if r == nil {
		t.Fatal("nil result after search death")
	}
	if r.Stats.SearchFailures != 1 {
		t.Fatalf("SearchFailures = %d, want 1", r.Stats.SearchFailures)
	}
	if r.Stats.Rescues != 0 {
		t.Errorf("Rescues = %d with rescue disabled", r.Stats.Rescues)
	}
	if len(r.Words) >= len(clean.Words) && len(clean.Words) > 0 {
		// Truncation at mid-utterance should lose words relative to clean.
		t.Logf("note: truncated decode kept %d of %d words", len(r.Words), len(clean.Words))
	}
	if rr := r.Cost; rr != rr || math.IsInf(float64(rr), 0) {
		t.Errorf("non-finite cost %v leaked out of a poisoned decode", rr)
	}
}

// TestRescueSkipsUnsearchableFrame: with rescue enabled the decoder widens
// (counting each attempt), concludes the frame is unsearchable, skips it,
// and decodes the rest of the utterance — same transcript as the clean run.
func TestRescueSkipsUnsearchableFrame(t *testing.T) {
	f := getFixture(t, 42)
	const widenings = 3
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true, RescueWidenings: widenings})
	if err != nil {
		t.Fatal(err)
	}
	clean := d.Decode(f.scores[0])
	poisoned := poisonFrame(f.scores[0], len(f.scores[0])/2)
	r := d.Decode(poisoned)
	if r.Stats.Rescues != widenings {
		t.Errorf("Rescues = %d, want %d (bounded escalation must stop)", r.Stats.Rescues, widenings)
	}
	if r.Stats.SearchFailures != 1 {
		t.Errorf("SearchFailures = %d, want 1", r.Stats.SearchFailures)
	}
	if len(r.Words) == 0 {
		t.Fatal("rescued decode produced no words")
	}
	// One skipped frame out of many must not derail the whole hypothesis:
	// the search continued to the end rather than truncating at the poison.
	if len(r.Words) < len(clean.Words)-2 {
		t.Errorf("rescued decode kept %d words, clean run has %d", len(r.Words), len(clean.Words))
	}
}

// TestRescueIdleWhenBeamHealthy: with healthy scores the rescue machinery
// must never fire, and results must be byte-identical to a decoder built
// without it — the opt-in guarantee that keeps the equivalence oracle valid.
func TestRescueIdleWhenBeamHealthy(t *testing.T) {
	f := getFixture(t, 42)
	plain, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	rescued, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true, RescueWidenings: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		a, b := plain.Decode(sc), rescued.Decode(sc)
		if b.Stats.Rescues != 0 || b.Stats.SearchFailures != 0 {
			t.Fatalf("utt %d: rescue fired on healthy scores: %d/%d", i, b.Stats.Rescues, b.Stats.SearchFailures)
		}
		if len(a.Words) != len(b.Words) || a.Cost != b.Cost {
			t.Fatalf("utt %d: rescue-enabled decoder diverged: %v vs %v", i, a.Words, b.Words)
		}
		for j := range a.Words {
			if a.Words[j] != b.Words[j] {
				t.Fatalf("utt %d word %d differs", i, j)
			}
		}
	}
}

// TestPoisonBurstSurvives: partial poison (a NaN burst in some rows, the
// shape faultinject.NaNScorer produces) must not require rescue at all —
// non-finite hypotheses are dropped arc by arc and healthy arcs carry the
// frame, with a finite final cost.
func TestPoisonBurstSurvives(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	scores := make([][]float32, len(f.scores[0]))
	for i, row := range f.scores[0] {
		r := append([]float32(nil), row...)
		if i%4 == 0 {
			for j := 1; j < len(r) && j < 9; j++ {
				r[j] = float32(math.Inf(1))
			}
		}
		scores[i] = r
	}
	r := d.Decode(scores)
	if r.Stats.SearchFailures != 0 {
		t.Errorf("burst poison killed the search: %d failures", r.Stats.SearchFailures)
	}
	if len(r.Words) == 0 {
		t.Error("burst-poisoned decode produced no words")
	}
	if c := float64(r.Cost); math.IsNaN(c) || math.IsInf(c, 0) {
		t.Errorf("non-finite cost %v survived the finite-weight guard", r.Cost)
	}
}

// TestDecodeContextCancel: a canceled context stops the per-frame loop and
// returns the best partial hypothesis together with ctx.Err().
func TestDecodeContextCancel(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, cerr := d.DecodeContext(ctx, f.scores[0])
	if cerr != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", cerr)
	}
	if r == nil {
		t.Fatal("nil result on cancellation; want best partial")
	}
	if r.Stats.Frames != 0 {
		t.Errorf("pre-canceled decode processed %d frames", r.Stats.Frames)
	}
	// The same decoder must still work for the next call.
	if r2, err := d.DecodeContext(context.Background(), f.scores[0]); err != nil || len(r2.Words) == 0 {
		t.Fatalf("decoder unusable after cancellation: %v", err)
	}
}
