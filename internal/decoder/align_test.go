package decoder

import (
	"testing"

	"repro/internal/semiring"
)

func TestForceAlignBasics(t *testing.T) {
	f := getFixture(t, 42)
	for i, u := range f.tk.Test {
		al, err := ForceAlign(f.tk.AM.G, Config{}, f.scores[i], u.Words)
		if err != nil {
			t.Fatalf("utt %d: %v", i, err)
		}
		if len(al.Senones) != len(f.scores[i]) {
			t.Fatalf("utt %d: %d aligned frames for %d score frames",
				i, len(al.Senones), len(f.scores[i]))
		}
		if len(al.WordEnds) != len(u.Words) {
			t.Fatalf("utt %d: %d word ends for %d words", i, len(al.WordEnds), len(u.Words))
		}
		prev := int32(-1)
		for j, e := range al.WordEnds {
			if e <= prev || int(e) >= len(f.scores[i]) {
				t.Fatalf("utt %d word %d: bad end frame %d", i, j, e)
			}
			prev = e
		}
		for fr, s := range al.Senones {
			if s < 1 || int(s) > f.tk.AM.NumSenones {
				t.Fatalf("utt %d frame %d: senone %d out of range", i, fr, s)
			}
		}
		if semiring.IsZero(al.Cost) {
			t.Fatalf("utt %d: infinite alignment cost", i)
		}
	}
}

// The forced alignment of the reference transcript can cost no less than
// the free-decoding best path (which optimizes over all transcripts), and
// when the decoder got the utterance right the two must coincide.
func TestForceAlignConsistentWithDecode(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range f.tk.Test {
		res := d.Decode(f.scores[i])
		if !equalHyp(res.Words, u.Words) {
			continue // decoder erred; alignment comparison not meaningful
		}
		al, err := ForceAlign(f.tk.AM.G, Config{}, f.scores[i], u.Words)
		if err != nil {
			t.Fatalf("utt %d: %v", i, err)
		}
		// Word end frames from alignment and decode should agree closely
		// (decode includes LM weights, which can shift boundaries only when
		// alternative alignments are nearly tied).
		for j := range al.WordEnds {
			diff := al.WordEnds[j] - res.WordEnds[j]
			if diff < -3 || diff > 3 {
				t.Errorf("utt %d word %d: aligned end %d vs decoded end %d",
					i, j, al.WordEnds[j], res.WordEnds[j])
			}
		}
	}
}

func TestForceAlignRejectsWrongTranscript(t *testing.T) {
	f := getFixture(t, 42)
	// A transcript longer than the audio can possibly fit must fail.
	long := make([]int32, 200)
	for i := range long {
		long[i] = int32(i%f.tk.Lex.V() + 1)
	}
	if _, err := ForceAlign(f.tk.AM.G, Config{}, f.scores[0][:10], long); err == nil {
		t.Error("expected alignment failure for impossible transcript")
	}
}
