package decoder

import (
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryPublishesDecode checks that a batch decode with telemetry
// enabled publishes the full Stats advance — every counter the registry
// exposes must agree with the Result's own Stats.
func TestTelemetryPublishesDecode(t *testing.T) {
	f := getFixture(t, 42)
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(8)
	tel := NewTelemetry(reg, tracer)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	var want Stats
	for _, sc := range f.scores {
		res := d.Decode(sc)
		want.Add(res.Stats)
	}
	if got := tel.Decodes.Value(); got != int64(len(f.scores)) {
		t.Errorf("decodes counter = %d, want %d", got, len(f.scores))
	}
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"frames", tel.Frames.Value(), int64(want.Frames)},
		{"tokens_expanded", tel.TokensExpanded.Value(), want.TokensExpanded},
		{"tokens_created", tel.TokensCreated.Value(), want.TokensCreated},
		{"tokens_beam_cut", tel.TokensBeamCut.Value(), want.TokensBeamCut},
		{"arcs", tel.ArcsTraversed.Value(), want.ArcsTraversed},
		{"eps", tel.EpsTraversed.Value(), want.EpsTraversed},
		{"lm_fetches", tel.LMFetches.Value(), want.LMFetches},
		{"lm_probes", tel.LMProbes.Value(), want.LMProbes},
		{"backoff_hops", tel.BackoffHops.Value(), want.BackoffHops},
		{"memo_hits", tel.MemoHits.Value(), want.MemoHits},
		{"memo_misses", tel.MemoMisses.Value(), want.MemoMisses},
		{"preemptive", tel.PreemptivePruned.Value(), want.PreemptivePruned},
		{"lattice", tel.LatticeEntries.Value(), want.LatticeEntries},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("counter %s = %d, want %d", c.name, c.got, c.want)
		}
	}
	if tel.FrontierTokens.Count() != int64(want.Frames) {
		t.Errorf("frontier observations = %d, want one per frame = %d",
			tel.FrontierTokens.Count(), want.Frames)
	}
	if got := int(tracer.Total()); got != len(f.scores) {
		t.Errorf("tracer recorded %d spans, want %d", got, len(f.scores))
	}
	var sb strings.Builder
	reg.WriteTo(&sb)
	for _, name := range []string{
		"unfold_decoder_frames_total",
		"unfold_decoder_backoff_hops_total",
		"unfold_decoder_frontier_tokens_bucket",
		"unfold_decoder_decode_seconds_count",
	} {
		if !strings.Contains(sb.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestTelemetryDoesNotChangeResults is the safety property: the same
// utterances decoded with and without telemetry must be byte-identical in
// words, costs, and deterministic search stats.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	f := getFixture(t, 42)
	plain, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	tel := NewTelemetry(telemetry.NewRegistry(), nil)
	instr, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{PreemptivePruning: true, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range f.scores {
		a, b := plain.Decode(sc), instr.Decode(sc)
		if a.Cost != b.Cost || len(a.Words) != len(b.Words) {
			t.Fatalf("utt %d: telemetry changed the result: cost %v vs %v", i, a.Cost, b.Cost)
		}
		for j := range a.Words {
			if a.Words[j] != b.Words[j] {
				t.Fatalf("utt %d word %d differs", i, j)
			}
		}
		if a.Stats.Search() != b.Stats.Search() {
			t.Fatalf("utt %d: search stats diverged:\n%+v\n%+v", i, a.Stats.Search(), b.Stats.Search())
		}
	}
}

// TestTelemetryStreamLive checks incremental publication: counters must
// advance between pushes, mid-utterance, not only at Finish — the property
// that makes a /metrics scrape during a long stream informative.
func TestTelemetryStreamLive(t *testing.T) {
	f := getFixture(t, 42)
	reg := telemetry.NewRegistry()
	tel := NewTelemetry(reg, telemetry.NewTracer(4))
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	scores := f.scores[0]
	s := d.NewStream()
	half := len(scores) / 2
	for _, frame := range scores[:half] {
		if err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	midFrames := tel.Frames.Value()
	midFetches := tel.LMFetches.Value()
	if midFrames != int64(half) {
		t.Errorf("frames counter mid-stream = %d, want %d", midFrames, half)
	}
	if midFetches == 0 {
		t.Error("LM fetch counter still zero mid-stream")
	}
	for _, frame := range scores[half:] {
		if err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	res := s.Finish()
	if got := tel.Frames.Value(); got != int64(len(scores)) {
		t.Errorf("frames counter after Finish = %d, want %d", got, len(scores))
	}
	if got := tel.LMFetches.Value(); got != res.Stats.LMFetches {
		t.Errorf("lm fetches = %d, want %d (no double counting)", got, res.Stats.LMFetches)
	}
	if tel.Streams.Value() != 1 {
		t.Errorf("streams counter = %d, want 1", tel.Streams.Value())
	}
	// A second decode on the same instruments accumulates rather than
	// resets.
	s2 := d.NewStream()
	for _, frame := range scores {
		_ = s2.Push(frame)
	}
	s2.Finish()
	if got := tel.Frames.Value(); got != int64(2*len(scores)) {
		t.Errorf("frames after second stream = %d, want %d", got, 2*len(scores))
	}
}

// TestTelemetryNilIsInert pins the disabled path: a decoder with nil
// telemetry publishes nothing and NewTelemetry over a nil registry yields
// an inert set that still accepts every hook.
func TestTelemetryNilIsInert(t *testing.T) {
	f := getFixture(t, 42)
	d, err := NewOnTheFly(f.tk.AM.G, f.tk.LMGraph.G, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d.Decode(f.scores[0]) // Telemetry nil: must not panic anywhere

	inert := NewTelemetry(nil, nil)
	inert.observeFrontier(10)
	inert.publishDelta(Stats{Frames: 5}, Stats{})
	inert.recordDecode(Stats{}, inert.now(), inert.startSpan("decode"))
	if inert.Frames.Value() != 0 {
		t.Error("inert telemetry recorded a value")
	}

	var nilTel *Telemetry
	nilTel.observeFrontier(1)
	nilTel.publishDelta(Stats{}, Stats{})
	nilTel.recordDecode(Stats{}, nilTel.now(), nilTel.startSpan("x"))
	nilTel.recordStream(Stats{}, Stats{}, nilTel.now(), nilTel.startSpan("x"))
}
