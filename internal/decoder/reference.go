package decoder

import (
	"repro/internal/metrics"
	"repro/internal/semiring"
	"repro/internal/wfst"
)

// This file retains the pre-tokenStore frontier: a map[uint64]token per
// frame plus an explicit insertion-order key list. It is the differential
// oracle for the zero-allocation hot path — DecodeReference must produce
// byte-identical hypotheses, costs, lattices and (Search-view) Stats to
// Decode, which the differential harness in differential_test.go asserts
// over randomized tasks, and cmd/unfold-bench uses it as the "before"
// implementation when measuring the allocation win. It allocates exactly
// the way the seed decoder did: fresh maps, key slices and closure queues
// every frame.

// refFrontier is the retained map-based active-token set. The order slice
// records insertion order, which is the iteration order the tokenStore uses
// — keeping the two implementations step-for-step identical, including
// preemptive-pruning thresholds, lattice indices and tie resolution.
type refFrontier struct {
	m     map[uint64]token
	order []uint64
}

func newRefFrontier(capHint int) *refFrontier {
	return &refFrontier{m: make(map[uint64]token, capHint)}
}

// relax is the map-frontier token update: keep the better cost, recording
// insertion order for new states.
func (r *refFrontier) relax(key uint64, cost semiring.Weight, lat int32) (created, improved bool) {
	old, ok := r.m[key]
	if !ok {
		r.m[key] = token{cost, lat}
		r.order = append(r.order, key)
		return true, true
	}
	if cost < old.cost {
		r.m[key] = token{cost, lat}
		return false, true
	}
	return false, false
}

// prune applies the shared map beamPrune, then drops deleted keys from the
// order list (preserving the survivors' insertion order, exactly as the
// tokenStore compaction does).
func (r *refFrontier) prune(beam semiring.Weight, maxActive int) int64 {
	_, cut := beamPrune(r.m, beam, maxActive)
	n := 0
	for _, k := range r.order {
		if _, ok := r.m[k]; ok {
			r.order[n] = k
			n++
		}
	}
	r.order = r.order[:n]
	return cut
}

// snapshot deep-copies the frontier (the rescue path's copyTokens).
func (r *refFrontier) snapshot() *refFrontier {
	out := newRefFrontier(len(r.m))
	for _, k := range r.order {
		out.m[k] = r.m[k]
	}
	out.order = append([]uint64(nil), r.order...)
	return out
}

// hookRef reports the frontier to the differential frame hook in iteration
// order, materializing the token slice the way the store exposes it.
func (d *OnTheFly) hookRef(frame int, r *refFrontier) {
	if d.frameHook == nil {
		return
	}
	toks := make([]token, len(r.order))
	for i, k := range r.order {
		toks[i] = r.m[k]
	}
	d.frameHook(frame, r.order, toks)
}

// DecodeReference runs the retained map-frontier implementation of the
// one-pass on-the-fly Viterbi search — the pre-tokenStore decoder, kept as
// the package's differential oracle and allocation baseline. Results are
// byte-identical to Decode: same hypotheses, word end times, costs,
// lattices and Stats (under Stats.Search; the allocation counters instead
// record the map implementation's per-frame churn). It honors the same
// Config, including RescueWidenings, but takes no context: it exists for
// testing and benchmarking, not serving.
func (d *OnTheFly) DecodeReference(scores [][]float32) *Result {
	a0 := metrics.ReadAllocCounters()
	res := d.decodeReference(scores)
	res.Stats.recordAlloc(a0)
	return res
}

func (d *OnTheFly) decodeReference(scores [][]float32) *Result {
	cfg := d.cfg
	lat := &lattice{}
	st := Stats{Frames: len(scores)}

	cur := newRefFrontier(1)
	cur.relax(otfKey(d.am.Start(), d.lm.Start()), semiring.One, -1)
	d.epsClosureRef(cur, lat, &st, semiring.Zero, -1)
	d.hookRef(-1, cur)

	for f := range scores {
		var snap *refFrontier
		if cfg.RescueWidenings > 0 {
			snap = cur.snapshot()
		}
		beam, maxActive := cfg.Beam, cfg.MaxActive
		next := d.stepFrameRef(cur, scores[f], beam, maxActive, lat, &st, f)
		for attempt := 0; len(next.order) == 0 && attempt < cfg.RescueWidenings; attempt++ {
			st.Rescues++
			beam *= 2
			if maxActive > 0 {
				maxActive *= 2
			}
			cur = snap.snapshot()
			next = d.stepFrameRef(cur, scores[f], beam, maxActive, lat, &st, f)
		}
		if len(next.order) == 0 {
			st.SearchFailures++
			if cfg.RescueWidenings > 0 {
				cur = snap
				d.hookRef(f, cur)
				continue
			}
			return d.finishRef(cur, lat, st)
		}
		cur = next
		d.hookRef(f, cur)
	}
	return d.finishRef(cur, lat, st)
}

// stepFrameRef is stepFrame over the map frontier: beam/histogram pruning
// in place, emission of every non-epsilon arc in insertion order, and the
// epsilon closure of the resulting frontier.
func (d *OnTheFly) stepFrameRef(cur *refFrontier, frame []float32, beam semiring.Weight, maxActive int, lat *lattice, st *Stats, f int) *refFrontier {
	cfg := d.cfg
	st.TokensBeamCut += cur.prune(beam, maxActive)
	st.TokensExpanded += int64(len(cur.order))
	next := newRefFrontier(2 * len(cur.order))

	runningBest := semiring.Zero
	for i := 0; i < len(cur.order); i++ {
		key := cur.order[i]
		tok := cur.m[key]
		amS := wfst.StateID(key >> 32)
		lmS := wfst.StateID(uint32(key))
		for _, a := range d.am.Arcs(amS) {
			if a.In == wfst.Epsilon {
				continue
			}
			st.ArcsTraversed++
			c := tok.cost + a.W - semiring.Weight(cfg.AcousticScale*frame[a.In])
			lmNext, latIdx := lmS, tok.lat
			if a.Out != wfst.Epsilon {
				thr := semiring.Zero
				if !semiring.IsZero(runningBest) {
					thr = runningBest + beam
				}
				var ok bool
				var lmW semiring.Weight
				lmNext, lmW, ok = d.resolve(lmS, a.Out, c, thr, st)
				if !ok {
					continue
				}
				c += lmW
				latIdx = lat.add(a.Out, tok.lat, int32(f))
			}
			if !finiteWeight(c) {
				continue
			}
			if created, _ := next.relax(otfKey(a.Next, lmNext), c, latIdx); created {
				st.TokensCreated++
			}
			if c < runningBest {
				runningBest = c
			}
		}
	}
	d.epsClosureRef(next, lat, st, semiring.Zero, int32(f))
	return next
}

// epsClosureRef is epsClosure over the map frontier, with the worklist
// seeded and extended in the same order as the store version.
func (d *OnTheFly) epsClosureRef(active *refFrontier, lat *lattice, st *Stats, thr semiring.Weight, frame int32) {
	queue := make([]uint64, 0, len(active.order))
	queue = append(queue, active.order...)
	for len(queue) > 0 {
		key := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		tok := active.m[key]
		amS := wfst.StateID(key >> 32)
		lmS := wfst.StateID(uint32(key))
		for _, a := range d.am.Arcs(amS) {
			if a.In != wfst.Epsilon {
				continue
			}
			st.EpsTraversed++
			c := tok.cost + a.W
			lmNext, latIdx := lmS, tok.lat
			if a.Out != wfst.Epsilon {
				var okRes bool
				var lmW semiring.Weight
				lmNext, lmW, okRes = d.resolve(lmS, a.Out, c, thr, st)
				if !okRes {
					continue
				}
				c += lmW
				latIdx = lat.add(a.Out, tok.lat, frame)
			}
			nKey := otfKey(a.Next, lmNext)
			created, improved := active.relax(nKey, c, latIdx)
			if created {
				st.TokensCreated++
			}
			if improved {
				queue = append(queue, nKey)
			}
		}
	}
}

// finishRef mirrors finish over the map frontier in insertion order.
func (d *OnTheFly) finishRef(active *refFrontier, lat *lattice, st Stats) *Result {
	res := &Result{Cost: semiring.Zero, Stats: st}
	bestAny, bestAnyLat := semiring.Zero, int32(-1)
	for _, key := range active.order {
		tok := active.m[key]
		amS := wfst.StateID(key >> 32)
		lmS := wfst.StateID(uint32(key))
		fa, fl := d.am.Final(amS), d.lm.Final(lmS)
		if !semiring.IsZero(fa) && !semiring.IsZero(fl) {
			c := tok.cost + fa + fl
			if c < res.Cost {
				res.Cost = c
				res.Words, res.WordEnds = lat.backtrace(tok.lat)
				res.ReachedFinal = true
			}
		}
		if tok.cost < bestAny {
			bestAny, bestAnyLat = tok.cost, tok.lat
		}
	}
	if !res.ReachedFinal && !semiring.IsZero(bestAny) {
		res.Cost = bestAny
		res.Words, res.WordEnds = lat.backtrace(bestAnyLat)
	}
	res.Stats.LatticeEntries = int64(lat.Entries())
	return res
}
