package bias

import (
	"hash/fnv"
	"strings"
	"testing"

	"repro/internal/wfst"
)

// fuzzLookup is the deterministic fuzz vocabulary: a word is in-vocabulary
// unless its FNV hash lands in a 1-in-4 OOV bucket, and its ID folds into
// [1, 2000] — small enough that arbitrary phrase lists collide on trie
// paths constantly, which is exactly the sharing the compiler must handle.
func fuzzLookup(word string) (int32, bool) {
	h := fnv.New32a()
	h.Write([]byte(word))
	v := h.Sum32()
	if v%4 == 0 {
		return 0, false
	}
	return int32(v%2000) + 1, true
}

// FuzzBiasCompiler throws arbitrary phrase lists — unicode, NULs, empty
// strings, duplicates, overlapping prefixes, absurd lengths — at Compile
// and asserts the contract: it never panics, identical inputs compile to
// identical machines, every machine satisfies the structural invariants
// (input-sorted, every state final, failure arcs only non-root → root, so
// epsilon-cycle-free), and Advance is total and terminates from every
// state on every word.
func FuzzBiasCompiler(f *testing.F) {
	f.Add("open the pod bay doors", float32(2))
	f.Add("", float32(0))
	f.Add("a\nb\nc", float32(0.5))
	f.Add("dup phrase\ndup phrase\ndup phrase", float32(1))
	f.Add("pre\npre fix\npre fix longer", float32(3))
	f.Add("tab\tand  spaces \n \n nul\x00byte", float32(0.25))
	f.Add("héllo wörld\n日本語 テスト\nемоji 🎙️ phrase", float32(1.5))
	f.Add(strings.Repeat("very long phrase with many words ", 40), float32(0.1))
	f.Add("w1\nw1 w2\nw2 w1\nw1 w1 w1", float32(-1)) // bad bonus must error, not panic
	f.Add("single", float32(1e9))                    // bonus over the cap must error

	f.Fuzz(func(t *testing.T, blob string, bonus float32) {
		phrases := strings.Split(blob, "\n")
		m, err := Compile(phrases, bonus, fuzzLookup)
		m2, err2 := Compile(phrases, bonus, fuzzLookup)

		// Determinism: same input, same outcome — bit-identical machines or
		// the same error disposition.
		if (err == nil) != (err2 == nil) {
			t.Fatalf("nondeterministic error: %v vs %v", err, err2)
		}
		if err != nil {
			return
		}
		if !wfst.Equal(m.Graph(), m2.Graph()) {
			t.Fatal("two compiles of the same input produced different machines")
		}
		if m.Phrases() != m2.Phrases() || m.Skipped() != m2.Skipped() || m.MaxBonus() != m2.MaxBonus() {
			t.Fatalf("nondeterministic stats: (%d,%d,%v) vs (%d,%d,%v)",
				m.Phrases(), m.Skipped(), m.MaxBonus(), m2.Phrases(), m2.Skipped(), m2.MaxBonus())
		}
		if m.Phrases()+m.Skipped() != len(phrases) {
			t.Fatalf("%d compiled + %d skipped != %d input phrases", m.Phrases(), m.Skipped(), len(phrases))
		}

		checkShape(t, m)

		// Advance totality: from every state, every word ID a phrase could
		// contain (plus epsilon and an out-of-machine ID) must advance to a
		// valid state with a finite weight in at most two probes.
		g := m.Graph()
		for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
			words := []int32{0, 1, 999, 2001}
			for _, a := range g.Arcs(s) {
				if a.In != wfst.Epsilon {
					words = append(words, a.In)
				}
			}
			for _, w := range words {
				next, dw := m.Advance(s, w)
				if next < 0 || int(next) >= g.NumStates() {
					t.Fatalf("Advance(%d, %d) -> invalid state %d", s, w, next)
				}
				if !(dw >= -m.MaxBonus() && dw <= m.MaxBonus()) {
					t.Fatalf("Advance(%d, %d) weight %v outside ±MaxBonus %v", s, w, dw, m.MaxBonus())
				}
			}
		}
	})
}
