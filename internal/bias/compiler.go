package bias

import (
	"container/list"
	"hash/fnv"
	"math"
	"strconv"
	"sync"
)

// CompilerConfig sizes a Compiler.
type CompilerConfig struct {
	// Entries caps the number of compiled machines kept across all tenants
	// (default 256). One machine is a few KB, so the default holds a busy
	// fleet's working set in ~1 MB.
	Entries int
	// TenantStats caps the number of tenants with individually tracked
	// hit/miss counters (default 1024). Later tenants aggregate into the
	// OverflowTenant bucket so a tenant-churn attack cannot grow the stats
	// map without bound.
	TenantStats int
}

// OverflowTenant is the aggregate stats bucket for tenants past the
// TenantStats cardinality cap.
const OverflowTenant = "_overflow"

func (c CompilerConfig) withDefaults() CompilerConfig {
	if c.Entries <= 0 {
		c.Entries = 256
	}
	if c.TenantStats <= 0 {
		c.TenantStats = 1024
	}
	return c
}

// CompilerStats is a snapshot of the compiled-machine cache counters.
type CompilerStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// TenantCounters is one tenant's share of the cache traffic.
type TenantCounters struct {
	Hits, Misses uint64
}

type compKey struct {
	tenant string
	fp     uint64
}

type compEntry struct {
	key compKey
	m   *Machine
}

// Compiler is the request-time bias compiler: a tenant-keyed LRU of
// compiled machines in front of Compile. The cache key is the tenant plus
// a fingerprint of (phrases, bonus), so a tenant re-sending its stable
// phrase list hits on every request after the first, while a profile edit
// recompiles immediately. Safe for concurrent use.
type Compiler struct {
	lookup Lookup
	cfg    CompilerConfig

	mu      sync.Mutex
	entries map[compKey]*list.Element // of *compEntry
	order   *list.List                // front = most recent
	hits    uint64
	misses  uint64
	evicted uint64
	tenants map[string]*TenantCounters
}

// NewCompiler builds a Compiler over the given word lookup.
func NewCompiler(lookup Lookup, cfg CompilerConfig) *Compiler {
	return &Compiler{
		lookup:  lookup,
		cfg:     cfg.withDefaults(),
		entries: map[compKey]*list.Element{},
		order:   list.New(),
		tenants: map[string]*TenantCounters{},
	}
}

// fingerprint hashes a phrase list and bonus into the cache key. FNV-1a
// with length-prefixed phrases, so list boundaries can't alias.
func fingerprint(phrases []string, bonus float32) uint64 {
	h := fnv.New64a()
	var buf [10]byte
	for _, p := range phrases {
		n := strconv.AppendUint(buf[:0], uint64(len(p)), 10)
		h.Write(append(n, ':'))
		h.Write([]byte(p))
	}
	var bb [4]byte
	bits := math.Float32bits(bonus)
	bb[0], bb[1], bb[2], bb[3] = byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24)
	h.Write(bb[:])
	return h.Sum64()
}

// tenantCounters returns tenant's stat record, creating it under the
// cardinality cap and falling back to the overflow bucket past it.
func (c *Compiler) tenantCounters(tenant string) *TenantCounters {
	if tc, ok := c.tenants[tenant]; ok {
		return tc
	}
	if len(c.tenants) >= c.cfg.TenantStats {
		tenant = OverflowTenant
		if tc, ok := c.tenants[tenant]; ok {
			return tc
		}
	}
	tc := &TenantCounters{}
	c.tenants[tenant] = tc
	return tc
}

// Get returns the compiled machine for (tenant, phrases, bonus), compiling
// and caching it on a miss. Compile errors are not cached; a tenant that
// keeps sending an oversized list pays the (cheap, bounded) failure each
// time instead of poisoning an LRU slot.
func (c *Compiler) Get(tenant string, phrases []string, bonus float32) (*Machine, error) {
	key := compKey{tenant: tenant, fp: fingerprint(phrases, bonus)}
	c.mu.Lock()
	tc := c.tenantCounters(tenant)
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		tc.Hits++
		m := el.Value.(*compEntry).m
		c.mu.Unlock()
		return m, nil
	}
	c.misses++
	tc.Misses++
	c.mu.Unlock()

	// Compile outside the lock: a slow compile for one tenant must not
	// stall every other tenant's cache hits. Two racing requests for the
	// same new key both compile; the second insert wins harmlessly
	// (machines for identical inputs are identical).
	m, err := Compile(phrases, bonus, c.lookup)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*compEntry).m = m
	} else {
		c.entries[key] = c.order.PushFront(&compEntry{key: key, m: m})
		for c.order.Len() > c.cfg.Entries {
			back := c.order.Back()
			delete(c.entries, back.Value.(*compEntry).key)
			c.order.Remove(back)
			c.evicted++
		}
	}
	c.mu.Unlock()
	return m, nil
}

// Stats returns a snapshot of the global cache counters.
func (c *Compiler) Stats() CompilerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CompilerStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: c.order.Len()}
}

// TenantStats returns a copy of the per-tenant counters. Tenants past the
// cardinality cap appear aggregated under OverflowTenant.
func (c *Compiler) TenantStats() map[string]TenantCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]TenantCounters, len(c.tenants))
	for t, tc := range c.tenants {
		out[t] = *tc
	}
	return out
}

// TenantCountersFor returns one tenant's counters without copying the whole
// table — the cheap per-scrape lookup the server's per-tenant /metrics
// callbacks use. The second return is false when the tenant has never been
// tracked (it may be aggregating under OverflowTenant).
func (c *Compiler) TenantCountersFor(tenant string) (TenantCounters, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	tc, ok := c.tenants[tenant]
	if !ok {
		return TenantCounters{}, false
	}
	return *tc, true
}

// Len returns the number of cached machines.
func (c *Compiler) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
