package bias

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// testLookup is a tiny deterministic vocabulary: "w1".."w99" map to IDs
// 1..99, everything else is out of vocabulary.
func testLookup(word string) (int32, bool) {
	var id int32
	if _, err := fmt.Sscanf(word, "w%d", &id); err != nil || id < 1 || id > 99 {
		return 0, false
	}
	return id, true
}

func mustCompile(t *testing.T, phrases []string, bonus float32) *Machine {
	t.Helper()
	m, err := Compile(phrases, bonus, testLookup)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// walk advances the machine over a word sequence and returns the summed
// weight plus the final weight — the total cost delta an utterance ending
// after those words would see.
func walk(m *Machine, words ...int32) semiring.Weight {
	s := m.Start()
	total := semiring.One
	for _, w := range words {
		var dw semiring.Weight
		s, dw = m.Advance(s, w)
		total += dw
	}
	return total + m.Final(s)
}

func TestEmptyMachineIsIdentity(t *testing.T) {
	for _, phrases := range [][]string{nil, {}, {""}, {"   "}, {"unknownword"}} {
		m := mustCompile(t, phrases, 2)
		if m.NumStates() != 1 {
			t.Errorf("phrases %q: %d states, want 1 (root only)", phrases, m.NumStates())
		}
		if m.MaxBonus() != 0 {
			t.Errorf("phrases %q: MaxBonus %v, want 0", phrases, m.MaxBonus())
		}
		if m.Final(m.Start()) != 0 {
			t.Errorf("phrases %q: root final weight %v, want 0", phrases, m.Final(m.Start()))
		}
		for _, w := range []int32{0, 1, 7, 99} {
			s, dw := m.Advance(m.Start(), w)
			if s != m.Start() || dw != 0 {
				t.Errorf("phrases %q word %d: advance -> (%d, %v), want (root, 0)", phrases, w, s, dw)
			}
		}
	}
}

func TestPhraseBonusAccounting(t *testing.T) {
	const bonus = 1.5
	m := mustCompile(t, []string{"w1 w2 w3", "w5"}, bonus)

	// A completed 3-word phrase keeps -3*bonus.
	if got, want := walk(m, 1, 2, 3), semiring.Weight(-3*bonus); got != want {
		t.Errorf("full match: %v, want %v", got, want)
	}
	// A single-word phrase keeps -bonus.
	if got, want := walk(m, 5), semiring.Weight(-bonus); got != want {
		t.Errorf("single-word match: %v, want %v", got, want)
	}
	// An abandoned partial match is cost-neutral: the failure arc (or the
	// final weight) repays the pending discount.
	if got := walk(m, 1, 2, 9); got != 0 {
		t.Errorf("abandoned match via failure arc: %v, want 0", got)
	}
	if got := walk(m, 1, 2); got != 0 {
		t.Errorf("abandoned match via final weight: %v, want 0", got)
	}
	// Unmatched words are free.
	if got := walk(m, 9, 8, 7); got != 0 {
		t.Errorf("unmatched words: %v, want 0", got)
	}
	// Abandoning a partial match onto a word that restarts a phrase at the
	// root still collects the new phrase's discount.
	if got, want := walk(m, 1, 2, 5), semiring.Weight(-bonus); got != want {
		t.Errorf("fail-then-rematch: %v, want %v", got, want)
	}
	if m.MaxBonus() != semiring.Weight(3*bonus) {
		t.Errorf("MaxBonus %v, want %v", m.MaxBonus(), semiring.Weight(3*bonus))
	}
}

func TestPrefixPhraseLocksItsBonus(t *testing.T) {
	// "w1 w2" is a phrase AND a prefix of "w1 w2 w3": completing the short
	// phrase locks its discount even if the long one is then abandoned.
	m := mustCompile(t, []string{"w1 w2", "w1 w2 w3"}, 1)
	if got, want := walk(m, 1, 2, 9), semiring.Weight(-2); got != want {
		t.Errorf("prefix locked: %v, want %v", got, want)
	}
	if got, want := walk(m, 1, 2, 3), semiring.Weight(-3); got != want {
		t.Errorf("long phrase: %v, want %v", got, want)
	}
}

func TestCompileCountsAndDedup(t *testing.T) {
	m := mustCompile(t, []string{"w1 w2", "w1 w2", "", "w1 nope", "w3"}, 1)
	if m.Phrases() != 3 { // both copies of "w1 w2" count as compiled
		t.Errorf("Phrases() = %d, want 3", m.Phrases())
	}
	if m.Skipped() != 2 {
		t.Errorf("Skipped() = %d, want 2", m.Skipped())
	}
	if m.NumStates() != 4 { // root, w1, w1-w2, w3
		t.Errorf("NumStates() = %d, want 4", m.NumStates())
	}
}

func TestCompileRejectsBadBonus(t *testing.T) {
	for _, bonus := range []float32{-1, float32(nan()), 1e7} {
		if _, err := Compile([]string{"w1"}, bonus, testLookup); err == nil {
			t.Errorf("bonus %v: want error", bonus)
		}
	}
	if _, err := Compile([]string{"w1"}, 1, nil); err == nil {
		t.Error("nil lookup: want error")
	}
}

func nan() float64 { z := 0.0; return z / z }

func TestCompileStateCap(t *testing.T) {
	// One long phrase of distinct words creates one node per word; a list
	// that needs more than MaxStates nodes must error, not truncate.
	words := make([]string, 0, 99)
	for i := 1; i < 100; i++ {
		words = append(words, fmt.Sprintf("w%d", i))
	}
	phrase := strings.Join(words, " ")
	var phrases []string
	for i := 0; i < MaxStates/len(words)+2; i++ {
		// Distinct prefixes: wN + the long tail, so paths don't share nodes.
		phrases = append(phrases, fmt.Sprintf("w%d %s", i%99+1, phrase))
	}
	if _, err := Compile(phrases, 1, testLookup); err == nil {
		t.Fatalf("%d phrases x %d words compiled under the %d-state cap", len(phrases), len(words), MaxStates)
	}
	// A list just under the cap still compiles.
	if _, err := Compile([]string{phrase}, 1, testLookup); err != nil {
		t.Fatal(err)
	}
}

func TestMachineShapeInvariants(t *testing.T) {
	m := mustCompile(t, []string{"w1 w2 w3", "w1 w5", "w7"}, 0.5)
	checkShape(t, m)
}

// checkShape asserts the structural invariants every compiled machine must
// satisfy; the fuzzer calls it on arbitrary inputs.
func checkShape(t *testing.T, m *Machine) {
	t.Helper()
	g := m.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid machine: %v", err)
	}
	if !g.InSorted() {
		t.Fatal("machine not input-sorted")
	}
	if g.Start() != 0 {
		t.Fatalf("start state %d, want 0", g.Start())
	}
	if n := g.NumStates(); n < 1 || n > MaxStates {
		t.Fatalf("%d states, want [1, %d]", n, MaxStates)
	}
	for s := wfst.StateID(0); int(s) < g.NumStates(); s++ {
		if !g.IsFinal(s) {
			t.Fatalf("state %d not final; every bias state must be final", s)
		}
		if fw := g.Final(s); !(fw >= 0) || fw > m.MaxBonus() {
			t.Fatalf("state %d final weight %v outside [0, MaxBonus=%v]", s, fw, m.MaxBonus())
		}
		for _, a := range g.Arcs(s) {
			if a.In == wfst.Epsilon {
				// Failure arcs: only from non-root, always straight to the
				// root, non-negative repayment — epsilon-cycle-free by
				// construction.
				if s == 0 {
					t.Fatal("root has an epsilon arc")
				}
				if a.Next != 0 {
					t.Fatalf("state %d epsilon arc targets %d, want root", s, a.Next)
				}
				if !(a.W >= 0) {
					t.Fatalf("state %d failure arc weight %v, want >= 0", s, a.W)
				}
			} else {
				if !(-a.W >= 0) || a.Next <= 0 || int(a.Next) >= g.NumStates() {
					t.Fatalf("state %d match arc %+v malformed", s, a)
				}
			}
		}
	}
	if !(m.MaxBonus() >= 0) {
		t.Fatalf("MaxBonus %v, want >= 0", m.MaxBonus())
	}
}

func TestCompilerCacheHitsMissesEvictions(t *testing.T) {
	c := NewCompiler(testLookup, CompilerConfig{Entries: 2})
	p1 := []string{"w1 w2"}
	p2 := []string{"w3"}
	p3 := []string{"w4"}

	m1, err := c.Get("alice", p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m1b, err := c.Get("alice", p1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m1b {
		t.Error("second Get did not return the cached machine")
	}
	// Same phrases, different tenant: separate cache entry (tenant-keyed).
	if _, err := c.Get("bob", p1, 1); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 0 {
		t.Errorf("stats %+v, want 1 hit / 2 misses / 0 evictions", st)
	}

	// Different bonus is a different machine; three more inserts overflow
	// the 2-entry cap and evict the least recently used each time.
	if _, err := c.Get("alice", p1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("alice", p2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("alice", p3, 1); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Errorf("cache holds %d entries, want cap 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 3 {
		t.Errorf("evictions %d, want 3", st.Evictions)
	}

	ts := c.TenantStats()
	if ts["alice"].Misses != 4 || ts["alice"].Hits != 1 {
		t.Errorf("alice counters %+v, want 4 misses / 1 hit", ts["alice"])
	}
	if ts["bob"].Misses != 1 || ts["bob"].Hits != 0 {
		t.Errorf("bob counters %+v, want 1 miss / 0 hits", ts["bob"])
	}
}

func TestCompilerErrorNotCached(t *testing.T) {
	c := NewCompiler(testLookup, CompilerConfig{Entries: 4})
	if _, err := c.Get("alice", []string{"w1"}, -1); err == nil {
		t.Fatal("want compile error for negative bonus")
	}
	if c.Len() != 0 {
		t.Errorf("failed compile cached: %d entries", c.Len())
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses %d, want 1", st.Misses)
	}
}

func TestCompilerTenantStatsCardinalityCap(t *testing.T) {
	c := NewCompiler(testLookup, CompilerConfig{Entries: 4, TenantStats: 2})
	for i := 0; i < 5; i++ {
		if _, err := c.Get(fmt.Sprintf("tenant-%d", i), []string{"w1"}, 1); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.TenantStats()
	if len(ts) != 3 { // tenant-0, tenant-1, _overflow
		t.Fatalf("tracking %d tenant series, want 3 (cap 2 + overflow): %v", len(ts), ts)
	}
	if ts[OverflowTenant].Misses != 3 {
		t.Errorf("overflow bucket %+v, want 3 misses", ts[OverflowTenant])
	}
}

func TestCompilerConcurrent(t *testing.T) {
	c := NewCompiler(testLookup, CompilerConfig{Entries: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tenant := fmt.Sprintf("t%d", (g+i)%4)
				phrases := []string{fmt.Sprintf("w%d w%d", i%9+1, g+1)}
				if _, err := c.Get(tenant, phrases, float32(g%3)+0.5); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups %d, want %d", st.Hits+st.Misses, 8*200)
	}
}
