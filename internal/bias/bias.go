// Package bias compiles per-tenant phrase lists into small weighted word
// acceptors — the third machine of the AM ∘ LM ∘ Bias composition. The
// decoder walks a compiled Machine word-synchronously: every cross-word arc
// that resolves an LM transition also advances the bias state, collecting a
// negative weight (a bonus) for every word that extends a listed phrase.
// This is the personalized-LM direction of the Facebook dynamic-decoding
// paper (PAPERS.md): contact names, hotwords and domain phrases composed at
// request time instead of baked into the LM.
//
// Machine semantics: the compiler builds a word-ID trie over the phrase
// list. Match arcs carry weight -bonus per word. Every non-root node has a
// failure (input-epsilon) arc back to the root whose weight repays the
// pending (not yet locked-in) bonus, and reaching the end of a phrase
// resets the pending amount to zero — so a hypothesis only keeps a discount
// for phrases it completes, and abandoning a partial match is cost-neutral.
// Every state is final with its pending amount as the exit weight, so an
// utterance that ends mid-phrase repays the partial discount too. The root
// has no failure arc (unmatched words loop there for free), which is what
// keeps the machine epsilon-cycle-free by construction.
//
// Simplification relative to full Aho–Corasick matching: failure arcs go
// straight to the root rather than to the longest proper suffix, so a
// phrase starting inside another match is not rediscovered. For short
// request-scoped hotword lists this trades a negligible recall loss for a
// machine the fuzzer can verify in one pass.
package bias

import (
	"fmt"
	"strings"

	"repro/internal/semiring"
	"repro/internal/wfst"
)

// MaxStates caps a compiled machine at 2^12 states: the decoder packs the
// bias state into the low 12 bits of its 64-bit composed search key
// (26 AM / 26 LM / 12 bias). One trie node per distinct phrase-prefix word,
// so this comfortably fits several hundred multi-word phrases.
const MaxStates = 1 << 12

// Lookup maps a written word form to its LM word ID. Phrases containing
// words the lookup does not know are skipped (and counted), never guessed.
type Lookup func(word string) (int32, bool)

// Machine is a compiled, immutable bias acceptor. It is safe for concurrent
// use by any number of decoders: compilation freezes the underlying WFST
// and Advance only reads it.
type Machine struct {
	g        *wfst.WFST
	maxBonus semiring.Weight
	phrases  int
	skipped  int
}

// Compile builds the bias machine for a phrase list. Each phrase is split
// on Unicode whitespace; bonus is the per-word cost discount (≥ 0, finite)
// applied to every word of a matched phrase. Empty phrases and phrases with
// out-of-vocabulary words are skipped and counted, duplicates collapse into
// the same trie path. An empty (or fully skipped) list compiles to the
// one-state identity machine, which the decoder composes with zero effect.
func Compile(phrases []string, bonus float32, lookup Lookup) (*Machine, error) {
	if !(bonus >= 0) || bonus > 1e6 { // rejects NaN, negatives and absurd magnitudes
		return nil, fmt.Errorf("bias: bonus must be in [0, 1e6], got %v", bonus)
	}
	if lookup == nil {
		return nil, fmt.Errorf("bias: nil word lookup")
	}

	// Trie over word IDs. Node 0 is the root. children uses a per-node map
	// keyed by word ID; insertion order over (phrase, word) is deterministic,
	// and SortByInput canonicalizes arc order afterwards, so identical inputs
	// compile to identical machines.
	type node struct {
		children map[int32]int32
		end      bool
	}
	nodes := []node{{children: map[int32]int32{}}}
	compiled, skipped := 0, 0
	var ids []int32
phrases:
	for _, p := range phrases {
		words := strings.Fields(p)
		if len(words) == 0 {
			skipped++
			continue
		}
		ids = ids[:0]
		for _, w := range words {
			id, ok := lookup(w)
			if !ok || id <= wfst.Epsilon {
				skipped++
				continue phrases
			}
			ids = append(ids, id)
		}
		cur := int32(0)
		for _, id := range ids {
			next, ok := nodes[cur].children[id]
			if !ok {
				if len(nodes) >= MaxStates {
					return nil, fmt.Errorf("bias: phrase list needs more than %d trie states", MaxStates)
				}
				next = int32(len(nodes))
				nodes = append(nodes, node{children: map[int32]int32{}})
				nodes[cur].children[id] = next
			}
			cur = next
		}
		nodes[cur].end = true
		compiled++
	}

	// pending[s] is the bonus a hypothesis at s has collected since the last
	// completed phrase on its path — the amount its failure arc and final
	// weight must repay. Children are processed parent-before-child because
	// trie node IDs are allocated in creation order (parent < child).
	w := semiring.Weight(bonus)
	pending := make([]semiring.Weight, len(nodes))
	maxBonus := semiring.One
	b := wfst.NewBuilder()
	for range nodes {
		b.AddState()
	}
	b.SetStart(0)
	for s := range nodes {
		for id, child := range nodes[s].children {
			if nodes[child].end {
				pending[child] = 0
			} else {
				pending[child] = pending[s] + w
			}
			if pending[s]+w > maxBonus {
				maxBonus = pending[s] + w
			}
			b.AddArc(wfst.StateID(s), wfst.Arc{In: id, Out: id, W: -w, Next: wfst.StateID(child)})
		}
		if s != 0 {
			b.AddArc(wfst.StateID(s), wfst.Arc{In: wfst.Epsilon, Out: wfst.Epsilon, W: pending[s], Next: 0})
		}
		b.SetFinal(wfst.StateID(s), pending[s])
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("bias: %w", err)
	}
	g.SortByInput()
	return &Machine{g: g, maxBonus: maxBonus, phrases: compiled, skipped: skipped}, nil
}

// Start returns the machine's start (root) state.
func (m *Machine) Start() wfst.StateID { return m.g.Start() }

// NumStates returns the state count (always in [1, MaxStates]).
func (m *Machine) NumStates() int { return m.g.NumStates() }

// Phrases returns the number of phrases compiled into the machine.
func (m *Machine) Phrases() int { return m.phrases }

// Skipped returns the number of phrases dropped (empty or out-of-vocabulary).
func (m *Machine) Skipped() int { return m.skipped }

// MaxBonus returns the largest single pending discount any path can hold —
// the slack the decoder adds to its preemptive-pruning threshold so a
// hypothesis about to complete a phrase is never pruned for a cost its
// bonus would have repaid. Zero for the identity machine.
func (m *Machine) MaxBonus() semiring.Weight { return m.maxBonus }

// Final returns the exit weight of state s: the pending (unfinished-match)
// discount the hypothesis repays when the utterance ends there. Every state
// is final, so composing with a bias machine never removes final states.
func (m *Machine) Final(s wfst.StateID) semiring.Weight { return m.g.Final(s) }

// Graph exposes the underlying acceptor for tests and tooling.
func (m *Machine) Graph() *wfst.WFST { return m.g }

// Advance consumes one emitted word from state s: a matching arc extends
// the phrase (collecting its -bonus), otherwise the failure arc repays the
// pending discount and the word is retried from the root. Unmatched words
// stay at the root for free. The returned weight is the total cost delta
// (≤ 0 on a match from the root, ≥ 0 on an abandoned partial match). It
// never allocates and terminates in at most two probes.
func (m *Machine) Advance(s wfst.StateID, word int32) (wfst.StateID, semiring.Weight) {
	if word == wfst.Epsilon {
		return s, semiring.One
	}
	acc := semiring.One
	for {
		if idx, ok := m.g.FindArc(s, word, nil); ok {
			a := m.g.Arcs(s)[idx]
			return a.Next, acc + a.W
		}
		if s == 0 {
			return s, acc
		}
		bo, ok := m.g.BackoffArc(s)
		if !ok { // unreachable by construction; keep Advance total anyway
			return 0, acc
		}
		acc += bo.W
		s = bo.Next
	}
}
