package unfold

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/acoustic"
	"repro/internal/am"
	"repro/internal/compress"
	"repro/internal/decoder"
	"repro/internal/flatstore"
	"repro/internal/task"
	"repro/internal/wfst"
)

// Bundle format v3 — the zero-copy flat model store (docs/MODEL_STORE.md).
// Where v2 is a directory of files the loader parses into pointer-rich
// graphs, v3 is a single flatstore container whose state/arc sections ARE
// the decoder's CSR arrays: LoadRecognizer maps the file and constructs
// *wfst.WFST views over the mapping (wfst.NewFromFlat), so load time is
// independent of arc count and resident memory is bounded by the file size.
// The compressed (bitpack/compress) encodings are stored verbatim alongside
// and parsed only on demand.
//
// flatVersion is the meta format_version a v3 bundle carries.
const flatVersion = 3

// SaveFlat writes the system's models as a v3 flat bundle at path
// (conventionally *.ufb3). The write is atomic: temp file + rename.
func (s *System) SaveFlat(path string) error {
	meta := bundleMeta{
		FormatVersion:  flatVersion,
		TaskName:       s.Task.Spec.Name,
		Scorer:         s.Task.Spec.Scorer,
		ScorerSeed:     s.Task.Spec.Seed,
		StatesPerPhone: s.Task.AM.Topo.StatesPerPhone,
		SelfLoopProb:   s.Task.AM.Topo.SelfLoopProb,
		Vocab:          s.Task.Lex.V(),
		LMOrder:        s.Task.LM.Order,
		NumSenones:     s.Task.AM.NumSenones,
		FeatDim:        s.Task.Senones.Dim,
		AM:             graphMetaOf(s.Task.AM.G),
		LM:             graphMetaOf(s.Task.LMGraph.G),
	}
	return writeFlatBundle(path, meta, s.Task.AM.G, s.Task.LMGraph.G,
		func(w io.Writer) error { return am.WriteLexicon(s.Task.Lex, w) },
		func(w io.Writer) error { return acoustic.WriteSenoneModel(s.Task.Senones, w) },
		func(w io.Writer) error { return s.Task.LM.WriteARPA(w) },
		s.AM, s.LM)
}

// flatGraphMeta records what a flat CSR section pair cannot express itself:
// the start state, the state count (cross-checked against the section
// length), and the input-sorted flag.
type flatGraphMeta struct {
	Start  int32 `json:"start"`
	States int   `json:"states"`
	Sorted bool  `json:"sorted"`
}

// graphMetaOf captures a graph's flat metadata.
func graphMetaOf(g *wfst.WFST) *flatGraphMeta {
	return &flatGraphMeta{Start: int32(g.Start()), States: g.NumStates(), Sorted: g.InSorted()}
}

// writeFlatBundle assembles the v3 container from its parts. Packed models
// may be nil (a converted bundle without compressed sections is still
// loadable; the sections exist for footprint parity with the paper).
func writeFlatBundle(path string, meta bundleMeta, amG, lmG *wfst.WFST,
	lexicon, senones, arpa func(io.Writer) error,
	packedAM *compress.AM, packedLM *compress.LM) error {
	mb, err := json.MarshalIndent(meta, "", "  ")
	if err != nil {
		return err
	}
	w, err := flatstore.Create(path)
	if err != nil {
		return err
	}
	add := func(kind flatstore.SectionKind, write func(io.Writer) error) {
		if err == nil {
			err = w.AddSection(kind, write)
		}
	}
	err = nil
	add(flatstore.SectionMeta, func(out io.Writer) error { _, e := out.Write(mb); return e })
	add(flatstore.SectionAMStates, func(out io.Writer) error { return wfst.WriteFlatStates(amG, out) })
	add(flatstore.SectionAMArcs, func(out io.Writer) error { return wfst.WriteFlatArcs(amG, out) })
	add(flatstore.SectionLMStates, func(out io.Writer) error { return wfst.WriteFlatStates(lmG, out) })
	add(flatstore.SectionLMArcs, func(out io.Writer) error { return wfst.WriteFlatArcs(lmG, out) })
	add(flatstore.SectionLexicon, lexicon)
	add(flatstore.SectionSenones, senones)
	add(flatstore.SectionARPA, arpa)
	if packedAM != nil {
		add(flatstore.SectionAMPacked, func(out io.Writer) error { return compress.WriteAM(packedAM, out) })
	}
	if packedLM != nil {
		add(flatstore.SectionLMPacked, func(out io.Writer) error { return compress.WriteLM(packedLM, out) })
	}
	if err != nil {
		return err
	}
	return w.Close()
}

// LoadRecognizerFast opens a v3 bundle on the O(1) trusted path: the file
// is mapped, only the header and section-table checksums are verified, and
// graph construction is the O(states) flat view — no arc-table scan, no
// per-arc work, no full-file read. Use LoadRecognizer for untrusted input;
// it adds per-section checksums and full structural validation.
//
// The Recognizer reads through the mapping until Close; see
// (*Recognizer).Close.
func LoadRecognizerFast(path string) (*Recognizer, error) {
	return loadFlat(path, false)
}

// loadFlat opens a v3 bundle; verify selects the full-integrity path
// (per-section CRCs + structural validation) over the O(1) trusted one.
func loadFlat(path string, verify bool) (rec *Recognizer, err error) {
	defer func() {
		if r := recover(); r != nil {
			rec, err = nil, &BundleError{Reason: "panic", Cause: fmt.Errorf("recovered: %v", r)}
		}
	}()

	b, err := flatstore.Open(path, flatstore.Options{VerifySections: verify})
	if err != nil {
		return nil, flatErr(err)
	}
	defer func() {
		if err != nil {
			b.Close()
		}
	}()

	mb, ferr := b.MustSection(flatstore.SectionMeta)
	if ferr != nil {
		return nil, flatErr(ferr)
	}
	var meta bundleMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return nil, &BundleError{File: "meta", Reason: "parse", Cause: err}
	}
	if meta.FormatVersion != flatVersion {
		return nil, &BundleError{File: "meta", Reason: "version",
			Cause: fmt.Errorf("flat bundle declares format %d, want %d", meta.FormatVersion, flatVersion)}
	}
	if meta.AM == nil || meta.LM == nil {
		return nil, &BundleError{File: "meta", Reason: "structure",
			Cause: fmt.Errorf("flat bundle metadata lacks graph descriptors")}
	}
	if err := boundMeta(meta); err != nil {
		return nil, err
	}

	r := &Recognizer{TaskName: meta.TaskName, recognizerFlatState: recognizerFlatState{bundle: b}}
	lex, ferr := b.MustSection(flatstore.SectionLexicon)
	if ferr != nil {
		return nil, flatErr(ferr)
	}
	if r.Lex, err = am.ReadLexicon(bytes.NewReader(lex)); err != nil {
		return nil, &BundleError{File: "lexicon", Reason: "parse", Cause: err}
	}
	sen, ferr := b.MustSection(flatstore.SectionSenones)
	if ferr != nil {
		return nil, flatErr(ferr)
	}
	if r.Senones, err = acoustic.ReadSenoneModel(bytes.NewReader(sen)); err != nil {
		return nil, &BundleError{File: "senones", Reason: "parse", Cause: err}
	}

	if r.AMGraph, err = flatGraph(b, flatstore.SectionAMStates, flatstore.SectionAMArcs, *meta.AM); err != nil {
		return nil, err
	}
	if r.LMGraph, err = flatGraph(b, flatstore.SectionLMStates, flatstore.SectionLMArcs, *meta.LM); err != nil {
		return nil, err
	}

	if verify {
		if err := r.AMGraph.Validate(); err != nil {
			return nil, &BundleError{File: "am-states", Reason: "structure", Cause: err}
		}
		if err := r.LMGraph.Validate(); err != nil {
			return nil, &BundleError{File: "lm-states", Reason: "structure", Cause: err}
		}
		if err := validateBundle(meta, r); err != nil {
			return nil, err
		}
	}

	switch meta.Scorer {
	case task.ScorerGMM:
		r.Scorer = acoustic.NewGMMScorer(r.Senones)
	case task.ScorerDNN:
		r.Scorer = acoustic.NewDNNScorer(r.Senones, rand.New(rand.NewSource(meta.ScorerSeed)), 0, 0)
	case task.ScorerRNN:
		r.Scorer = acoustic.NewRNNScorer(r.Senones, rand.New(rand.NewSource(meta.ScorerSeed)), 0)
	default:
		return nil, &BundleError{File: "meta", Reason: "structure",
			Cause: fmt.Errorf("unknown scorer kind %q", meta.Scorer)}
	}

	dec, err := decoder.NewOnTheFly(r.AMGraph, r.LMGraph, decoder.Config{PreemptivePruning: true})
	if err != nil {
		return nil, &BundleError{Reason: "structure", Cause: err}
	}
	r.dec = dec
	return r, nil
}

// flatGraph builds the zero-copy WFST view over a state/arc section pair.
func flatGraph(b *flatstore.Bundle, states, arcs flatstore.SectionKind, gm flatGraphMeta) (*wfst.WFST, error) {
	sb, err := b.MustSection(states)
	if err != nil {
		return nil, flatErr(err)
	}
	ab, err := b.MustSection(arcs)
	if err != nil {
		return nil, flatErr(err)
	}
	g, gerr := wfst.NewFromFlat(wfst.StateID(gm.Start), gm.States, sb, ab, gm.Sorted)
	if gerr != nil {
		return nil, &BundleError{File: states.String(), Reason: "structure", Cause: gerr}
	}
	return g, nil
}

// boundMeta applies the v2 loader's plausibility bounds to a v3 header
// before any field sizes an allocation.
func boundMeta(meta bundleMeta) error {
	switch {
	case meta.Vocab < 1 || meta.Vocab > 1<<22:
		return &BundleError{File: "meta", Reason: "structure", Cause: fmt.Errorf("implausible vocab %d", meta.Vocab)}
	case meta.NumSenones < 1 || meta.NumSenones > 1<<22:
		return &BundleError{File: "meta", Reason: "structure", Cause: fmt.Errorf("implausible senone count %d", meta.NumSenones)}
	case meta.LMOrder < 1 || meta.LMOrder > 3:
		return &BundleError{File: "meta", Reason: "structure", Cause: fmt.Errorf("LM order %d outside [1,3]", meta.LMOrder)}
	case meta.FeatDim < 1 || meta.FeatDim > 1<<16:
		return &BundleError{File: "meta", Reason: "structure", Cause: fmt.Errorf("implausible feature dim %d", meta.FeatDim)}
	case meta.AM.States < 0 || meta.AM.States > 1<<28 || meta.LM.States < 0 || meta.LM.States > 1<<28:
		return &BundleError{File: "meta", Reason: "structure", Cause: fmt.Errorf("implausible graph state counts %d/%d", meta.AM.States, meta.LM.States)}
	}
	return nil
}

// flatErr maps a flatstore error into the bundle error taxonomy callers
// already handle.
func flatErr(err error) error {
	var fe *flatstore.Error
	if !errors.As(err, &fe) {
		return &BundleError{Reason: "io", Cause: err}
	}
	reason := "parse"
	switch fe.Reason {
	case "io":
		reason = "io"
	case "fault":
		reason = "panic"
	case "checksum":
		reason = "checksum"
	case "magic", "version":
		reason = "version"
	case "section", "bounds", "table", "header":
		reason = "structure"
	}
	file := ""
	if fe.Section != 0 {
		file = fe.Section.String()
	}
	return &BundleError{File: file, Reason: reason, Cause: err}
}

// ConvertBundle rewrites a v2 directory bundle as a v3 flat bundle at
// dstPath. The graphs, lexicon, senone model and ARPA text carried over are
// the ones the v2 loader itself produces, so recognition output from the
// converted bundle is byte-identical to the v2 path (the CI format-compat
// job asserts this). The compressed sections are re-encoded from the
// graphs with freshly trained quantizers — deterministic for a given
// bundle.
func ConvertBundle(srcDir, dstPath string) error {
	r, err := LoadRecognizer(srcDir)
	if err != nil {
		return err
	}
	mb, err := os.ReadFile(filepath.Join(srcDir, metaFile))
	if err != nil {
		return &BundleError{File: metaFile, Reason: "io", Cause: err}
	}
	var meta bundleMeta
	if err := json.Unmarshal(mb, &meta); err != nil {
		return &BundleError{File: metaFile, Reason: "parse", Cause: err}
	}
	meta.FormatVersion = flatVersion
	meta.Checksums = nil // superseded by the container's CRCs
	meta.AM = graphMetaOf(r.AMGraph)
	meta.LM = graphMetaOf(r.LMGraph)

	packedAM, packedLM := encodePacked(r)
	return writeFlatBundle(dstPath, meta, r.AMGraph, r.LMGraph,
		func(w io.Writer) error { return am.WriteLexicon(r.Lex, w) },
		func(w io.Writer) error { return acoustic.WriteSenoneModel(r.Senones, w) },
		func(w io.Writer) error { return r.Model.WriteARPA(w) },
		packedAM, packedLM)
}

// encodePacked builds the compressed sections from a loaded recognizer's
// graphs. Encoding failures degrade to omitting the sections rather than
// failing the conversion: the packed forms are a footprint artifact, not a
// decode dependency.
func encodePacked(r *Recognizer) (*compress.AM, *compress.LM) {
	var packedAM *compress.AM
	var packedLM *compress.LM
	if qa, err := compress.TrainQuantizer(compress.CollectWeights(r.AMGraph), 0); err == nil {
		packedAM, _ = compress.EncodeAM(r.AMGraph, qa)
	}
	if r.Model != nil {
		if gr, err := r.Model.BuildGraph(); err == nil {
			if ql, err := compress.TrainQuantizer(compress.CollectWeights(gr.G), 0); err == nil {
				packedLM, _ = compress.EncodeLM(gr, ql)
			}
		}
	}
	return packedAM, packedLM
}

// Close releases the bundle mapping backing a v3-loaded recognizer (no-op
// for v2 loads). The recognizer must not decode afterwards: its graphs read
// through the mapping. The serving registry drains in-flight requests
// before calling this.
func (r *Recognizer) Close() error {
	if r.bundle == nil {
		return nil
	}
	b := r.bundle
	r.bundle = nil
	return b.Close()
}

// Recheck re-verifies the bundle mapping backing a v3-loaded recognizer:
// the cheap pass recomputes the header and section-table CRC over the
// mapped bytes against the value remembered at load; full additionally
// re-verifies every section payload. Damage (in-place file mutation, a read
// fault on the mapping) surfaces as a typed *BundleError — never a crash —
// which is what lets the serving layer quarantine a sick model while the
// process keeps serving the others. A v2 (directory) load has no mapping to
// re-verify and always passes.
func (r *Recognizer) Recheck(full bool) error {
	if r.bundle == nil {
		return nil
	}
	if err := r.bundle.Recheck(full); err != nil {
		return flatErr(err)
	}
	return nil
}

// ResidentBytes reports the memory the recognizer's model data can pin:
// the bundle file size for a mapped v3 load, or the in-memory graph
// footprint for a v2 (or heap-fallback) load.
func (r *Recognizer) ResidentBytes() int64 {
	if r.bundle != nil {
		return r.bundle.SizeBytes()
	}
	var n int64
	if r.AMGraph != nil {
		n += r.AMGraph.SizeBytes()
	}
	if r.LMGraph != nil {
		n += r.LMGraph.SizeBytes()
	}
	return n
}

// Mapped reports whether the recognizer decodes through a memory-mapped
// bundle (false for v2 directory loads and the io.ReaderAt fallback).
func (r *Recognizer) Mapped() bool { return r.bundle != nil && r.bundle.Mapped() }

// PackedAM parses (once) and returns the bundle's compressed acoustic
// model, or an error when the section is absent or the recognizer was not
// loaded from a v3 bundle. The parse is deferred off the load path; the
// returned model's arc stream reads directly from the bundle mapping.
func (r *Recognizer) PackedAM() (*compress.AM, error) {
	r.packedOnce.Do(r.parsePacked)
	return r.packedAM, r.packedAMErr
}

// PackedLM parses (once) and returns the bundle's compressed language
// model; see PackedAM.
func (r *Recognizer) PackedLM() (*compress.LM, error) {
	r.packedOnce.Do(r.parsePacked)
	return r.packedLM, r.packedLMErr
}

func (r *Recognizer) parsePacked() {
	if r.bundle == nil {
		err := fmt.Errorf("unfold: packed sections only exist in v3 bundles")
		r.packedAMErr, r.packedLMErr = err, err
		return
	}
	if p, ok := r.bundle.Section(flatstore.SectionAMPacked); ok {
		r.packedAM, r.packedAMErr = compress.ReadAM(p)
	} else {
		r.packedAMErr = fmt.Errorf("unfold: bundle has no am-packed section")
	}
	if p, ok := r.bundle.Section(flatstore.SectionLMPacked); ok {
		r.packedLM, r.packedLMErr = compress.ReadLM(p)
	} else {
		r.packedLMErr = fmt.Errorf("unfold: bundle has no lm-packed section")
	}
}

// recognizerFlatState is the v3-only state carried by Recognizer, split out
// so persist.go's v2 structures stay untouched.
type recognizerFlatState struct {
	bundle      *flatstore.Bundle
	packedOnce  sync.Once
	packedAM    *compress.AM
	packedLM    *compress.LM
	packedAMErr error
	packedLMErr error
}
