// Package unfold is the public API of the UNFOLD reproduction: a
// memory-efficient speech recognizer built on on-the-fly WFST composition
// (Yazdani, Arnau, González — MICRO-50, 2017).
//
// A System bundles everything needed to recognize speech on one task: the
// acoustic-model and language-model transducers, their compressed forms,
// an acoustic scorer, and constructors for the software decoders and the
// two simulated hardware designs. The typical flow:
//
//	sys, _ := unfold.NewSystem(unfold.KaldiVoxforge(1.0))
//	words, _ := sys.Recognize(sys.TestSet()[0].Frames)
//
// Everything underneath lives in internal/ packages; this package is the
// supported surface.
package unfold

import (
	"context"
	"fmt"

	"repro/internal/accel"
	"repro/internal/compress"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/task"
	"repro/internal/wfst"
)

// Spec describes a benchmark task; see the predefined constructors.
type Spec = task.Spec

// Utterance is a test item: reference words plus synthesized frames.
type Utterance = task.Utterance

// DecoderConfig tunes the beam search (beam width, pruning, LM lookup).
type DecoderConfig = decoder.Config

// DecodePool is the concurrent batch-decoding engine: N workers, each with
// a private on-the-fly decoder, sharing one bounded sharded offset-lookup
// cache. Build one with System.NewDecodePool; see docs/DECODING.md.
type DecodePool = pool.DecodePool

// PoolConfig sizes a DecodePool (worker count, L1/L2 cache geometry, and
// the per-worker decoder configuration).
type PoolConfig = pool.Config

// DecodeBatch is the result of one DecodePool.Decode call: per-utterance
// results plus throughput, search and cache aggregates.
type DecodeBatch = pool.Batch

// LaneScheduler is the frame-synchronous batched decoding engine: up to N
// concurrent utterances advance in lockstep through a shared lane group, so
// every active lane is scored by ONE batched scorer call per frame step
// (dense matrix work) while each lane runs its own on-the-fly Viterbi
// search. Results are byte-identical to solo decoding. Build one with
// System.NewLaneScheduler; see docs/DECODING.md.
type LaneScheduler = pool.LaneScheduler

// LaneConfig sizes a LaneScheduler (lane count, per-lane decoder
// configuration, optional telemetry).
type LaneConfig = pool.LaneConfig

// Throughput reports batch decode rates (utterances/sec, frames/sec,
// aggregate real-time factor, cache hit rate).
type Throughput = metrics.Throughput

// Predefined tasks mirroring the paper's evaluation set. The scale factor
// multiplies vocabulary and corpus sizes (1.0 = laptop-friendly defaults).
var (
	KaldiTedlium     = task.KaldiTedlium
	KaldiLibrispeech = task.KaldiLibrispeech
	KaldiVoxforge    = task.KaldiVoxforge
	EesenTedlium     = task.EesenTedlium
)

// System is a fully assembled recognizer for one task.
type System struct {
	Task *task.Task
	// AM and LM are the compressed transducers UNFOLD decodes from.
	AM *compress.AM
	LM *compress.LM

	composed *wfst.WFST
	dec      *decoder.OnTheFly
}

// NewSystem builds the models for a task spec and compresses them.
func NewSystem(spec Spec) (*System, error) {
	tk, err := task.Build(spec)
	if err != nil {
		return nil, err
	}
	qa, err := compress.TrainQuantizer(compress.CollectWeights(tk.AM.G), 0)
	if err != nil {
		return nil, fmt.Errorf("unfold: quantizing AM: %w", err)
	}
	cam, err := compress.EncodeAM(tk.AM.G, qa)
	if err != nil {
		return nil, fmt.Errorf("unfold: compressing AM: %w", err)
	}
	ql, err := compress.TrainQuantizer(compress.CollectWeights(tk.LMGraph.G), 0)
	if err != nil {
		return nil, fmt.Errorf("unfold: quantizing LM: %w", err)
	}
	clm, err := compress.EncodeLM(tk.LMGraph, ql)
	if err != nil {
		return nil, fmt.Errorf("unfold: compressing LM: %w", err)
	}
	dec, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
	if err != nil {
		return nil, err
	}
	return &System{Task: tk, AM: cam, LM: clm, dec: dec}, nil
}

// TestSet returns the task's held-out utterances.
func (s *System) TestSet() []Utterance { return s.Task.Test }

// Words renders word IDs as surface forms.
func (s *System) Words(ids []int32) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = s.Task.Lex.Words[id]
	}
	return out
}

// Recognize runs the full pipeline — acoustic scoring plus the on-the-fly
// Viterbi search — and returns the recognized word IDs. Frames are
// validated against the acoustic model's feature dimension up front; a
// mismatch returns a *DimensionError instead of garbage scores or a panic
// deep in the scorer.
func (s *System) Recognize(frames [][]float32) ([]int32, error) {
	return s.RecognizeContext(context.Background(), frames)
}

// RecognizeContext is Recognize with deadline/cancellation semantics: the
// context is checked once per frame during the search, and on cancellation
// the best partial hypothesis is returned together with ctx.Err().
func (s *System) RecognizeContext(ctx context.Context, frames [][]float32) ([]int32, error) {
	if len(frames) == 0 {
		return nil, nil
	}
	if err := validateFrames(frames, s.Task.Senones.Dim); err != nil {
		return nil, err
	}
	scores := s.Task.Scorer.ScoreUtterance(frames)
	res, err := s.dec.DecodeContext(ctx, scores)
	return res.Words, err
}

// NewDecoder builds a software on-the-fly decoder with a custom config.
func (s *System) NewDecoder(cfg DecoderConfig) (*decoder.OnTheFly, error) {
	return decoder.NewOnTheFly(s.Task.AM.G, s.Task.LMGraph.G, cfg)
}

// NewDecodePool builds a concurrent batch-decoding engine over this
// system's graphs. The pool is long-lived: reusing it across batches keeps
// the shared offset cache warm. Transcripts are identical to sequential
// decoding for any worker count.
func (s *System) NewDecodePool(cfg PoolConfig) (*DecodePool, error) {
	return pool.New(s.Task.AM.G, s.Task.LMGraph.G, cfg)
}

// NewLaneScheduler builds a frame-synchronous lane scheduler over this
// system's graphs and acoustic scorer. Where a DecodePool parallelizes
// pre-scored utterances across workers, the lane scheduler takes raw
// feature frames and batches the SCORING: concurrent utterances share one
// dense scorer call per frame step, which is where DNN/RNN scoring wins
// (see BENCH_PR8.json). The scheduler owns the system's scorer while open —
// do not call Recognize concurrently with lane decodes.
func (s *System) NewLaneScheduler(cfg LaneConfig) (*LaneScheduler, error) {
	return pool.NewLaneScheduler(s.Task.AM.G, s.Task.LMGraph.G, s.Task.Scorer, cfg)
}

// RecognizeBatch scores each utterance's frames and decodes the batch on a
// transient pool of the given worker count (≤0 means GOMAXPROCS). It
// returns per-utterance word IDs, index-aligned with the input, plus the
// batch throughput aggregates. For repeated batches build a DecodePool
// once via NewDecodePool and keep it warm instead.
//
// Scoring runs sequentially before the fan-out — acoustic scorers keep
// per-utterance scratch state and are not concurrency-safe — so the
// reported throughput covers the search, the component this pool scales.
func (s *System) RecognizeBatch(frames [][][]float32, workers int) ([][]int32, Throughput, error) {
	return s.RecognizeBatchContext(context.Background(), frames, workers)
}

// RecognizeBatchContext is RecognizeBatch with deadline/cancellation
// semantics. Every utterance's feature dimensions are validated up front
// (fail fast with a *DecodeError wrapping a *DimensionError, before any
// scoring work). On cancellation it returns promptly with index-aligned
// partial results — utterances decoded before the cancellation keep their
// transcripts, the rest are nil — together with ctx.Err().
func (s *System) RecognizeBatchContext(ctx context.Context, frames [][][]float32, workers int) ([][]int32, Throughput, error) {
	for i, f := range frames {
		if err := validateFrames(f, s.Task.Senones.Dim); err != nil {
			return nil, Throughput{}, &DecodeError{Utterance: i, Stage: StageFeatures, Cause: err}
		}
	}
	scores := make([][][]float32, len(frames))
	for i, f := range frames {
		if err := ctx.Err(); err != nil {
			return nil, Throughput{}, err
		}
		if len(f) == 0 {
			scores[i] = nil
			continue
		}
		scores[i] = s.Task.Scorer.ScoreUtterance(f)
	}
	p, err := s.NewDecodePool(PoolConfig{Workers: workers})
	if err != nil {
		return nil, Throughput{}, err
	}
	batch, err := p.DecodeContext(ctx, scores)
	if batch == nil {
		return nil, Throughput{}, err
	}
	out := make([][]int32, len(batch.Results))
	for i, r := range batch.Results {
		if r != nil {
			out[i] = r.Words
		}
	}
	return out, batch.Throughput, err
}

// NewAccelerator builds the UNFOLD hardware simulator over the compressed
// datasets.
func (s *System) NewAccelerator(cfg DecoderConfig) (*accel.Unfold, error) {
	return accel.NewUnfold(accel.UnfoldConfig(), cfg, s.AM, s.LM, s.Task.AM.NumSenones)
}

// NewBaselineAccelerator builds the fully-composed baseline simulator; it
// triggers the offline composition on first use.
func (s *System) NewBaselineAccelerator(cfg DecoderConfig) (*accel.FullyComposed, error) {
	g, err := s.Composed()
	if err != nil {
		return nil, err
	}
	return accel.NewFullyComposed(accel.BaselineConfig(), cfg, g, s.Task.AM.NumSenones)
}

// Composed returns (building and caching on first call) the offline
// AM∘LM composition — the baseline's dataset and the memory blow-up the
// paper avoids.
func (s *System) Composed() (*wfst.WFST, error) {
	if s.composed == nil {
		g, err := wfst.Compose(s.Task.AM.G, s.Task.LMGraph.G, wfst.ComposeOptions{MaxStates: 30_000_000})
		if err != nil {
			return nil, err
		}
		s.composed = g
	}
	return s.composed, nil
}

// Footprint summarizes dataset sizes (the Table 1 / Figure 8 quantities).
type Footprint struct {
	AMBytes           int64
	LMBytes           int64
	AMCompressedBytes int64
	LMCompressedBytes int64
	// ComposedBytes is 0 until Composed() has been built.
	ComposedBytes int64
}

// OnTheFlyBytes is the total UNFOLD dataset size.
func (f Footprint) OnTheFlyBytes() int64 { return f.AMBytes + f.LMBytes }

// CompressedBytes is the total compressed UNFOLD dataset size.
func (f Footprint) CompressedBytes() int64 { return f.AMCompressedBytes + f.LMCompressedBytes }

// Footprint reports the system's dataset sizes.
func (s *System) Footprint() Footprint {
	f := Footprint{
		AMBytes:           s.Task.AM.G.SizeBytes(),
		LMBytes:           s.Task.LMGraph.G.SizeBytes(),
		AMCompressedBytes: s.AM.SizeBytes(),
		LMCompressedBytes: s.LM.SizeBytes(),
	}
	if s.composed != nil {
		f.ComposedBytes = s.composed.SizeBytes()
	}
	return f
}

// EvaluateWER decodes the test set and returns the word error rate (%).
func (s *System) EvaluateWER() (float64, error) {
	var acc metrics.WERAccumulator
	for _, u := range s.Task.Test {
		hyp, err := s.Recognize(u.Frames)
		if err != nil {
			return 0, err
		}
		acc.Add(u.Words, hyp)
	}
	return acc.WER(), nil
}

// RecognizeTimed runs the pipeline and additionally returns each word's end
// time in seconds (frame index x 10 ms).
func (s *System) RecognizeTimed(frames [][]float32) (words []int32, ends []float64, err error) {
	if len(frames) == 0 {
		return nil, nil, nil
	}
	if err := validateFrames(frames, s.Task.Senones.Dim); err != nil {
		return nil, nil, err
	}
	res := s.dec.Decode(s.Task.Scorer.ScoreUtterance(frames))
	ends = make([]float64, len(res.WordEnds))
	for i, e := range res.WordEnds {
		ends[i] = float64(e) * 0.010
	}
	return res.Words, ends, nil
}
