package unfold

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/task"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"meta.json", "lexicon.txt", "am.wfst", "lm.arpa", "senones.bin"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("bundle missing %s: %v", name, err)
		}
	}
	rec, err := LoadRecognizer(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Lex.V() != sys.Task.Lex.V() {
		t.Errorf("vocab %d != %d", rec.Lex.V(), sys.Task.Lex.V())
	}
	// The loaded recognizer must decode the original test set to the same
	// hypotheses (GMM scorer: fully reconstructible).
	for i, u := range sys.TestSet() {
		want, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rec.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("utt %d: loaded %v vs original %v", i, rec.Words(got), sys.Words(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("utt %d word %d differs after round trip", i, j)
			}
		}
	}
	if hyp, err := rec.Recognize(nil); err != nil || hyp != nil {
		t.Error("empty frames should recognize to nothing")
	}
}

func TestSaveLoadDNNTask(t *testing.T) {
	spec := smallSpec()
	spec.Scorer = task.ScorerDNN
	sys, err := NewSystem(spec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := sys.Save(dir); err != nil {
		t.Fatal(err)
	}
	rec, err := LoadRecognizer(dir)
	if err != nil {
		t.Fatal(err)
	}
	// DNN perturbation weights are refreshed on load; the discriminative
	// template layer is exact, so decoding must still work (hypotheses may
	// rarely differ — require non-empty sane output).
	hyp, err := rec.Recognize(sys.TestSet()[0].Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(hyp) == 0 {
		t.Error("DNN bundle decoded to nothing")
	}
}

func TestLoadRecognizerErrors(t *testing.T) {
	if _, err := LoadRecognizer(t.TempDir()); err == nil {
		t.Error("expected error for empty directory")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRecognizer(dir); err == nil {
		t.Error("expected error for corrupt meta")
	}
}
