package unfold

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/faultinject"
)

// bundleFixture is a system and a pristine saved bundle, built once per test
// binary; corruption tests copy the bundle, never touch the original.
type bundleFixture struct {
	sys *System
	dir string
	err error
}

var (
	bundleOnce sync.Once
	bundleFix  bundleFixture
)

func getBundle(t testing.TB) *bundleFixture {
	t.Helper()
	bundleOnce.Do(func() {
		sys, err := NewSystem(smallSpec())
		if err != nil {
			bundleFix.err = err
			return
		}
		dir, err := os.MkdirTemp("", "unfold-bundle-*")
		if err != nil {
			bundleFix.err = err
			return
		}
		if err := sys.Save(dir); err != nil {
			bundleFix.err = err
			return
		}
		bundleFix = bundleFixture{sys: sys, dir: dir}
	})
	if bundleFix.err != nil {
		t.Fatal(bundleFix.err)
	}
	return &bundleFix
}

// copyDir clones the pristine bundle (flat directory of regular files).
func copyDir(t testing.TB, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestLoadSurvivesCorruptBundles is the bundle-hardening contract: across
// many seeded corruptions (bit flips, truncations, zero runs, appended
// garbage, in any bundle file) LoadRecognizer must either load successfully
// or return a typed *BundleError — never panic, never return an untyped
// error, never hand back a half-valid recognizer.
func TestLoadSurvivesCorruptBundles(t *testing.T) {
	fx := getBundle(t)
	var loaded, rejected int
	for seed := int64(1); seed <= 50; seed++ {
		dir := t.TempDir()
		copyDir(t, fx.dir, dir)
		name, err := faultinject.CorruptBundle(dir, seed)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := LoadRecognizer(dir)
		if err != nil {
			var be *BundleError
			if !errors.As(err, &be) {
				t.Fatalf("seed %d (%s): untyped error %v", seed, name, err)
			}
			rejected++
			continue
		}
		// Benign corruption (e.g. a flipped bit in meta.json whitespace):
		// the recognizer must actually work, not just construct.
		if _, err := rec.Recognize(fx.sys.TestSet()[0].Frames); err != nil {
			t.Fatalf("seed %d (%s): loaded but cannot recognize: %v", seed, name, err)
		}
		loaded++
	}
	t.Logf("50 corrupted bundles: %d rejected with BundleError, %d benign", rejected, loaded)
	if rejected == 0 {
		t.Error("no corruption was ever detected; checksums not working")
	}
}

// TestRecognizeSurvivesPoisonedScorer swaps in a scorer that injects
// NaN/Inf bursts and checks that recognition neither panics nor errors —
// poisoned hypotheses are dropped inside the search, not propagated.
func TestRecognizeSurvivesPoisonedScorer(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, fault := range []faultinject.ScoreFault{faultinject.FaultNaN, faultinject.FaultPosInf, faultinject.FaultNegInf} {
		sys.Task.Scorer = &faultinject.NaNScorer{
			Inner: sys.Task.Scorer, Rate: 0.3, Fault: fault, Seed: int64(fault) + 1,
		}
		for i, u := range sys.TestSet() {
			if _, err := sys.Recognize(u.Frames); err != nil {
				t.Fatalf("fault %d utt %d: %v", fault, i, err)
			}
		}
	}
}

// TestRecognizeBatchSurvivesPoisonedScorer: the batch path under a poisoned
// scorer stays index-aligned and error-free.
func TestRecognizeBatchSurvivesPoisonedScorer(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	sys.Task.Scorer = &faultinject.NaNScorer{Inner: sys.Task.Scorer, Rate: 0.5, Seed: 4}
	var frames [][][]float32
	for _, u := range sys.TestSet() {
		frames = append(frames, u.Frames)
	}
	out, tp, err := sys.RecognizeBatch(frames, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(frames) {
		t.Fatalf("%d results for %d utterances", len(out), len(frames))
	}
	if tp.Frames == 0 {
		t.Error("throughput not recorded")
	}
}

// TestDimensionErrors: every public entry point rejects mismatched feature
// dimensions up front with a typed error identifying the offending frame.
func TestDimensionErrors(t *testing.T) {
	fx := getBundle(t)
	want := fx.sys.Task.Senones.Dim
	bad := [][]float32{make([]float32, want), make([]float32, want+3)}

	_, err := fx.sys.Recognize(bad)
	var de *DimensionError
	if !errors.As(err, &de) {
		t.Fatalf("Recognize: %v, want DimensionError", err)
	}
	if de.Frame != 1 || de.Got != want+3 || de.Want != want {
		t.Errorf("DimensionError = %+v", de)
	}

	if _, _, err := fx.sys.RecognizeTimed(bad); !errors.As(err, &de) {
		t.Errorf("RecognizeTimed: %v, want DimensionError", err)
	}

	good := [][]float32{make([]float32, want)}
	_, _, err = fx.sys.RecognizeBatch([][][]float32{good, bad}, 2)
	var dde *DecodeError
	if !errors.As(err, &dde) {
		t.Fatalf("RecognizeBatch: %v, want DecodeError", err)
	}
	if dde.Utterance != 1 || dde.Stage != StageFeatures || !errors.As(dde, &de) {
		t.Errorf("DecodeError = %+v", dde)
	}

	rec, err := LoadRecognizer(fx.dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Recognize(bad); !errors.As(err, &de) {
		t.Errorf("Recognizer.Recognize: %v, want DimensionError", err)
	}
}

// TestRecognizeContextCanceled: a dead context surfaces promptly through
// both the single-utterance and batch public paths.
func TestRecognizeContextCanceled(t *testing.T) {
	fx := getBundle(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	u := fx.sys.TestSet()[0]
	if _, err := fx.sys.RecognizeContext(ctx, u.Frames); !errors.Is(err, context.Canceled) {
		t.Errorf("RecognizeContext: %v, want context.Canceled", err)
	}
	if _, _, err := fx.sys.RecognizeBatchContext(ctx, [][][]float32{u.Frames}, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("RecognizeBatchContext: %v, want context.Canceled", err)
	}
	rec, err := LoadRecognizer(fx.dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.RecognizeContext(ctx, u.Frames); !errors.Is(err, context.Canceled) {
		t.Errorf("Recognizer.RecognizeContext: %v, want context.Canceled", err)
	}
}
