# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

.PHONY: all build test vet race fuzz-smoke cover check bench bench-report experiments

all: build test

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

# race-checks the whole module, in particular the concurrent DecodePool
# and its sharded offset cache (internal/pool's hammer tests). Run this
# before sending any change that touches concurrent code.
race:
	go test -race ./...

# 10-second randomized corruption pass over the model-bundle loader
# (docs/ROBUSTNESS.md). Catches loader panics long fuzz runs would.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzLoadBundle -fuzztime 10s .

# Coverage floor for the decoder package: the Viterbi hot path (token
# store, pruning, rescue, streaming) must stay at least 80% covered by the
# unit + differential + allocation suites.
cover:
	go test -coverprofile=cover.out ./internal/decoder/
	@go tool cover -func=cover.out | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/decoder coverage: %.1f%% (floor 80%%)\n", pct; \
		if (pct < 80) { print "FAIL: coverage below floor"; exit 1 } }'

# The pre-merge gate: vet, the full suite under the race detector (which
# includes the differential and allocation-regression tests), the decoder
# coverage floor, and a fuzz smoke over the bundle loader.
check: vet race cover fuzz-smoke

bench:
	go test -bench=. -benchmem ./...

# Re-measures the decode hot path (tokenstore vs map-reference frontier,
# streaming, worker pool) and rewrites BENCH_PR3.json; the history lives in
# docs/BENCHMARKS.md.
bench-report:
	go test -run '^$$' -bench 'FrontierDecode|StreamPush|ParallelDecode' -benchmem .
	go run ./cmd/unfold-bench -out BENCH_PR3.json

experiments:
	go run ./cmd/unfold-experiments -exp all -quick
