# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

.PHONY: all build test vet lint race race-soak lanes-soak pipeline-soak bias-soak fuzz-smoke cover check bench bench-report bench-check experiments loadgen-smoke format-compat chaos chaos-smoke

# Soak durations and fuzz budget. The defaults are the pre-release deep
# pass; the nightly workflow overrides them (RACE_SOAK=60s ... FUZZTIME=5m)
# and `make race` runs the same tests at their 2s in-test defaults.
RACE_SOAK ?= 20s
LANES_SOAK ?= 20s
PIPELINE_SOAK ?= 20s
BIAS_SOAK ?= 20s
FUZZTIME ?= 10s

all: build test

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

# Fast-fail style gate: gofmt on every tracked Go file plus go vet. Runs
# first in CI so formatting mistakes fail in seconds, not after the race
# suite.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

# race-checks the whole module, in particular the concurrent DecodePool
# and its sharded offset cache (internal/pool's hammer tests). Run this
# before sending any change that touches concurrent code.
race:
	go test -race ./...

# Extended lifecycle soak: $(RACE_SOAK) of mixed batch + stream load
# against a saturated two-worker pool with a mid-flight SIGTERM drain,
# under the race detector. `make race` runs the same test at its 2s
# default; this target is the pre-release deep pass (docs/LOAD.md).
# Test-binary flags must come after the package path: `go test` stops
# package-list parsing at the first flag it does not know, so the old
# flags-first ordering silently tested the repo root instead.
race-soak:
	go test -race -run TestSoakMixedLoadWithDrain -count=1 -v ./internal/server/ -soak $(RACE_SOAK)

# Lane scheduler endurance pass: $(LANES_SOAK) of mixed batch + stream
# churn through a narrow lane group under the race detector, with every
# completed decode checked against its solo reference. `make race` runs the
# same test at its 2s default; this target is the deep pass for changes
# touching the lane group, the batched scorers or the scheduler
# (docs/DECODING.md).
lanes-soak:
	go test -race -run TestSoakLaneChurn -count=1 -v ./internal/pool/ -lanes-soak $(LANES_SOAK)

# Score-ahead pipeline endurance pass: $(PIPELINE_SOAK) of randomized
# batch/stream/cancel/abort churn through pipelined decoders at random
# lookahead depths under the race detector, every completed decode checked
# byte-for-byte against its synchronous solo reference (docs/DECODING.md
# §2c). `make race` runs the same test at its 2s default; run the deep pass
# for changes touching the pipeline, window scorers or stream plumbing.
pipeline-soak:
	go test -race -run TestSoakPipelineChurn -count=1 -v ./internal/decoder/ -pipeline-soak $(PIPELINE_SOAK)

# Tenant-churn bias endurance pass: $(BIAS_SOAK) of many-tenant biased
# batch + stream load through the lane scheduler under the race detector,
# with tenants joining and getting evicted from the compiler cache and the
# per-tenant offset-cache partitions mid-flight, every completed decode
# checked against its biased solo reference (docs/BIASING.md). `make race`
# runs the same test at its 2s default; run the deep pass for changes
# touching internal/bias, the tenant partitions or the bias plumbing.
bias-soak:
	go test -race -run TestSoakBiasTenantChurn -count=1 -v ./internal/pool/ -bias-soak $(BIAS_SOAK)

# Randomized corruption passes over the model-bundle loaders — the v2
# directory format and the v3 flat container (docs/ROBUSTNESS.md,
# docs/MODEL_STORE.md). Catches loader panics long fuzz runs would.
fuzz-smoke:
	go test -run '^$$' -fuzz '^FuzzLoadBundle$$' -fuzztime $(FUZZTIME) .
	go test -run '^$$' -fuzz '^FuzzLoadBundleV3$$' -fuzztime $(FUZZTIME) .
	go test -run '^$$' -fuzz '^FuzzPipelineLookahead$$' -fuzztime $(FUZZTIME) ./internal/decoder/
	go test -run '^$$' -fuzz '^FuzzBiasCompiler$$' -fuzztime $(FUZZTIME) ./internal/bias/

# Coverage floors: the decoder package (Viterbi hot path — token store,
# pruning, rescue, streaming) and the bias compiler (per-tenant machines on
# the request path) must stay at least 80% covered; the serving stack
# (server admission/handlers, pool, telemetry) at least 75% each.
# Profiles land under build/ (gitignored) so repeated runs never litter the
# repo root; CI uploads them as artifacts.
cover:
	@mkdir -p build
	go test -coverprofile=build/cover.out ./internal/decoder/
	@go tool cover -func=build/cover.out | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/decoder coverage: %.1f%% (floor 80%%)\n", pct; \
		if (pct < 80) { print "FAIL: coverage below floor"; exit 1 } }'
	go test -coverprofile=build/cover-bias.out ./internal/bias/
	@go tool cover -func=build/cover-bias.out | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/bias coverage: %.1f%% (floor 80%%)\n", pct; \
		if (pct < 80) { print "FAIL: coverage below floor"; exit 1 } }'
	@for pkg in server pool telemetry; do \
		go test -coverprofile=build/cover-$$pkg.out ./internal/$$pkg/ > build/cover-$$pkg.log 2>&1 || \
			{ cat build/cover-$$pkg.log; rm -f build/cover-$$pkg.log; exit 1; }; \
		rm -f build/cover-$$pkg.log; \
		go tool cover -func=build/cover-$$pkg.out | awk -v pkg=$$pkg '/^total:/ { \
			pct = $$3 + 0; \
			printf "internal/%s coverage: %.1f%% (floor 75%%)\n", pkg, pct; \
			if (pct < 75) { print "FAIL: coverage below floor"; exit 1 } }' || exit 1; \
	done

# The pre-merge gate: lint (gofmt + vet), the full suite under the race
# detector (which includes the differential and allocation-regression
# tests), the decoder coverage floor, and a fuzz smoke over the bundle
# loader.
check: lint race cover fuzz-smoke

bench:
	go test -bench=. -benchmem ./...

# Re-measures the decode hot path (tokenstore vs map-reference frontier,
# streaming, worker pool, batched lanes, score-ahead pipeline) and rewrites
# BENCH_PR3.json plus the lane-width sweep in BENCH_PR8.json and the
# lookahead sweep in BENCH_PR9.json; the history lives in docs/BENCHMARKS.md.
bench-report:
	go test -run '^$$' -bench 'FrontierDecode|StreamPush|ParallelDecode' -benchmem .
	go run ./cmd/unfold-bench -out BENCH_PR3.json
	go run ./cmd/unfold-bench -lanes -out BENCH_PR8.json
	go run ./cmd/unfold-bench -pipeline -out BENCH_PR9.json

# Benchmark-regression smoke: re-measures the hot path and fails if any
# row's allocs/frame exceeds the committed BENCH_PR3.json baseline.
# Allocation counts (unlike wall-clock) are stable across machines, so this
# is safe to run on shared CI runners.
bench-check:
	@mkdir -p build
	go run ./cmd/unfold-bench -out build/unfold-bench-check.json -check BENCH_PR3.json

# On-disk format compatibility gate (docs/MODEL_STORE.md): the checked-in
# golden v2 bundle must load, convert to a v3 flat bundle via wfst-tool,
# pass full verification, and decode byte-identically on every load path
# against the checked-in transcript. A failure means a format change broke
# already-deployed bundles. Regenerate the golden set after an intentional
# format bump with: go test -run TestGoldenFormatCompat -update-golden .
format-compat:
	go test -run TestGoldenFormatCompat -count=1 -v .
	go build -o /tmp/unfold-wfst-tool ./cmd/wfst-tool
	/tmp/unfold-wfst-tool -op convert -dir testdata/golden-v2 -out /tmp/unfold-golden.ufb3
	/tmp/unfold-wfst-tool -op info -bundle /tmp/unfold-golden.ufb3
	/tmp/unfold-wfst-tool -op verify -bundle /tmp/unfold-golden.ufb3

experiments:
	go run ./cmd/unfold-experiments -exp all -quick

# Overload smoke (docs/LOAD.md): a 2-worker quarter-scale server takes 10
# seconds of 4x-capacity open-loop load. The loadgen exits nonzero on any
# 5xx, transport failure, malformed accepted response, or accepted p99
# past 8s (the per-request deadline is 5s); the final `wait` fails if the
# server crashed or did not drain cleanly on SIGTERM.
loadgen-smoke:
	go build -o /tmp/unfold-smoke-serve ./cmd/unfold-serve
	go build -o /tmp/unfold-smoke-loadgen ./cmd/unfold-loadgen
	@/tmp/unfold-smoke-serve -task voxforge -scale 0.25 -workers 2 \
		-addr 127.0.0.1:18090 -max-queue 8 -degrade-low 2 -degrade-high 6 & \
	SERVE_PID=$$!; \
	trap "kill $$SERVE_PID 2>/dev/null" EXIT; \
	/tmp/unfold-smoke-loadgen -target http://127.0.0.1:18090 \
		-task voxforge -scale 0.25 -duration 10s -multiplier 4 \
		-utt-frames 40 -max-p99 8s || exit 1; \
	trap - EXIT; \
	kill -TERM $$SERVE_PID; \
	wait $$SERVE_PID

# The deterministic chaos suite (docs/ROBUSTNESS.md): seeded fault-injection
# tests covering quarantine and backoff reloads, cross-model isolation while
# one model is corrupted on disk, stream watchdogs against stalled clients,
# and the fault-injection primitives themselves. Everything runs under the
# race detector; the same seeds replay the same faults.
chaos:
	go test -race -count=1 -run 'TestChaos|TestStream|TestDecodeFailure|TestQuarantine' ./internal/server/
	go test -race -count=1 ./internal/faultinject/
	go test -race -count=1 -run 'TestCheckHeader|TestRecheck' ./internal/flatstore/

# Live chaos drill (docs/ROBUSTNESS.md): a 2-model server (task "default" +
# a packed "victim" bundle) takes steady load while unfold-loadgen -chaos
# corrupts the victim's bundle in place, parks stalled streaming clients,
# and then heals the file. The loadgen exits nonzero unless the victim was
# quarantined, only structured errors were answered while it was sick, the
# healthy model saw zero 5xx, and the victim returned to ready; the final
# `wait` fails if the server crashed or did not drain on SIGTERM.
chaos-smoke:
	go build -o /tmp/unfold-chaos-serve ./cmd/unfold-serve
	go build -o /tmp/unfold-chaos-loadgen ./cmd/unfold-loadgen
	go build -o /tmp/unfold-chaos-wfst ./cmd/wfst-tool
	/tmp/unfold-chaos-wfst -task voxforge -scale 0.25 -op pack -out /tmp/unfold-chaos-victim.ufb3
	@/tmp/unfold-chaos-serve -task voxforge -scale 0.25 -workers 2 \
		-addr 127.0.0.1:18091 -bundle victim=/tmp/unfold-chaos-victim.ufb3 \
		-health-interval 300ms -reload-backoff 100ms \
		-stream-watchdog 2s -stream-write-timeout 2s & \
	SERVE_PID=$$!; \
	trap "kill $$SERVE_PID 2>/dev/null" EXIT; \
	/tmp/unfold-chaos-loadgen -target http://127.0.0.1:18091 \
		-task voxforge -scale 0.25 -rps 5 -duration 10s -utt-frames 40 \
		-chaos -chaos-bundle /tmp/unfold-chaos-victim.ufb3 -chaos-model victim \
		-wait-ready 30s || exit 1; \
	trap - EXIT; \
	kill -TERM $$SERVE_PID; \
	wait $$SERVE_PID
