# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

.PHONY: all build test vet lint race fuzz-smoke cover check bench bench-report bench-check experiments

all: build test

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

# Fast-fail style gate: gofmt on every tracked Go file plus go vet. Runs
# first in CI so formatting mistakes fail in seconds, not after the race
# suite.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	go vet ./...

# race-checks the whole module, in particular the concurrent DecodePool
# and its sharded offset cache (internal/pool's hammer tests). Run this
# before sending any change that touches concurrent code.
race:
	go test -race ./...

# 10-second randomized corruption pass over the model-bundle loader
# (docs/ROBUSTNESS.md). Catches loader panics long fuzz runs would.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzLoadBundle -fuzztime 10s .

# Coverage floor for the decoder package: the Viterbi hot path (token
# store, pruning, rescue, streaming) must stay at least 80% covered by the
# unit + differential + allocation suites.
cover:
	go test -coverprofile=cover.out ./internal/decoder/
	@go tool cover -func=cover.out | awk '/^total:/ { \
		pct = $$3 + 0; \
		printf "internal/decoder coverage: %.1f%% (floor 80%%)\n", pct; \
		if (pct < 80) { print "FAIL: coverage below floor"; exit 1 } }'

# The pre-merge gate: lint (gofmt + vet), the full suite under the race
# detector (which includes the differential and allocation-regression
# tests), the decoder coverage floor, and a fuzz smoke over the bundle
# loader.
check: lint race cover fuzz-smoke

bench:
	go test -bench=. -benchmem ./...

# Re-measures the decode hot path (tokenstore vs map-reference frontier,
# streaming, worker pool) and rewrites BENCH_PR3.json; the history lives in
# docs/BENCHMARKS.md.
bench-report:
	go test -run '^$$' -bench 'FrontierDecode|StreamPush|ParallelDecode' -benchmem .
	go run ./cmd/unfold-bench -out BENCH_PR3.json

# Benchmark-regression smoke: re-measures the hot path and fails if any
# row's allocs/frame exceeds the committed BENCH_PR3.json baseline.
# Allocation counts (unlike wall-clock) are stable across machines, so this
# is safe to run on shared CI runners.
bench-check:
	go run ./cmd/unfold-bench -out /tmp/unfold-bench-check.json -check BENCH_PR3.json

experiments:
	go run ./cmd/unfold-experiments -exp all -quick
