# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

.PHONY: all build test race bench experiments

all: build test

build:
	go build ./...

test: build
	go test ./...

# race-checks the whole module, in particular the concurrent DecodePool
# and its sharded offset cache (internal/pool's hammer tests). Run this
# before sending any change that touches concurrent code.
race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/unfold-experiments -exp all -quick
