# Developer entry points. Everything is stdlib-only Go; no tools beyond
# the toolchain are required.

.PHONY: all build test vet race fuzz-smoke check bench experiments

all: build test

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

# race-checks the whole module, in particular the concurrent DecodePool
# and its sharded offset cache (internal/pool's hammer tests). Run this
# before sending any change that touches concurrent code.
race:
	go test -race ./...

# 10-second randomized corruption pass over the model-bundle loader
# (docs/ROBUSTNESS.md). Catches loader panics long fuzz runs would.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzLoadBundle -fuzztime 10s .

# The pre-merge gate: vet, the full suite under the race detector, and a
# fuzz smoke over the bundle loader.
check: vet race fuzz-smoke

bench:
	go test -bench=. -benchmem ./...

experiments:
	go run ./cmd/unfold-experiments -exp all -quick
