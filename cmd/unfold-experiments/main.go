// Command unfold-experiments regenerates the paper's tables and figures on
// the synthetic tasks. Each experiment has a stable ID; see -list.
//
// Examples:
//
//	unfold-experiments -exp tab1
//	unfold-experiments -exp all -quick
//	unfold-experiments -exp fig9 -scale 2 -utts 40
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID (see -list) or \"all\"")
	scale := flag.Float64("scale", 1.0, "task scale factor (vocabulary, corpus)")
	utts := flag.Int("utts", 0, "test utterances per task (0 = task default)")
	quick := flag.Bool("quick", false, "restrict multi-task experiments to the small task")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *list {
		desc := experiments.Describe()
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, desc[id])
		}
		return
	}

	opt := experiments.Options{
		Scale:      *scale,
		Utterances: *utts,
		Quick:      *quick,
		Out:        os.Stdout,
	}
	if err := experiments.Run(*exp, opt); err != nil {
		fmt.Fprintln(os.Stderr, "unfold-experiments:", err)
		os.Exit(1)
	}
}
