// Command unfold-serve runs the streaming recognition server: it builds a
// synthetic benchmark task, loads it into an HTTP frontend, and serves
// batch and streaming recognition with full observability — Prometheus
// /metrics, /healthz readiness, net/http/pprof, and a /debug/spans ring of
// recent decode traces. SIGTERM/SIGINT drain gracefully: the health probe
// flips to 503 immediately, in-flight decodes finish, then the process
// exits.
//
// Load management is on by default: batch requests queue behind a bounded
// wait queue (-max-queue) and shed with 429 + Retry-After past it, decode
// quality steps down between the -degrade-low/-degrade-high watermarks,
// and per-request deadlines (the `timeout` body field or X-Unfold-Timeout
// header) free their slot the moment they expire. See docs/LOAD.md for
// capacity planning and tuning.
//
// The server can serve several models at once (docs/MODEL_STORE.md):
// -bundle name=path preloads a v3 flat bundle under a name (repeatable),
// -model-budget caps the summed resident bytes, and models can be hot
// added, swapped and drained at runtime through /v1/models. Requests pick
// a model with the `model` body field or ?model= parameter; without one
// they use the model named "default" (the -task system, or a -bundle
// loaded under that name when running with -task none).
//
// Serving is supervised (docs/ROBUSTNESS.md): a model that keeps failing
// decodes (-quarantine-threshold) or fails its periodic integrity check
// (-health-interval) is quarantined — its traffic answers structured 503s
// while every other model keeps serving — and reloaded from disk under
// jittered exponential backoff (-reload-backoff). Streams carry watchdogs:
// a client that stops sending frames (-stream-watchdog) or stops reading
// results (-stream-write-timeout) has its decode canceled and slot freed.
//
// Examples:
//
//	unfold-serve -task voxforge -addr :8080
//	unfold-serve -task none -bundle vox=/models/vox.ufb3 -model-budget 2147483648
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics | grep unfold_decoder
//	curl -s -X POST -d '{"name":"new","path":"/models/new.ufb3"}' localhost:8080/v1/models
//	curl -s localhost:8080/v1/testset?utt=0 |
//	  jq '{utterances:[{frames:.data}]}' |
//	  curl -s -d @- localhost:8080/v1/recognize
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/decoder"
	"repro/internal/server"
	"repro/internal/task"

	unfold "repro"
)

// bundleList collects repeated -bundle name=path flags.
type bundleList []struct{ name, path string }

func (b *bundleList) String() string {
	var parts []string
	for _, e := range *b {
		parts = append(parts, e.name+"="+e.path)
	}
	return strings.Join(parts, ",")
}

func (b *bundleList) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*b = append(*b, struct{ name, path string }{name, path})
	return nil
}

func specFor(name string, scale float64) (task.Spec, error) {
	switch strings.ToLower(name) {
	case "tedlium":
		return unfold.KaldiTedlium(scale), nil
	case "librispeech":
		return unfold.KaldiLibrispeech(scale), nil
	case "voxforge":
		return unfold.KaldiVoxforge(scale), nil
	case "eesen":
		return unfold.EesenTedlium(scale), nil
	default:
		return task.Spec{}, fmt.Errorf("unknown task %q (tedlium, librispeech, voxforge, eesen)", name)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	taskName := flag.String("task", "voxforge", "task: tedlium, librispeech, voxforge, eesen, or none (bundles only)")
	scale := flag.Float64("scale", 1.0, "task scale factor")
	var bundles bundleList
	flag.Var(&bundles, "bundle", "preload a v3 flat bundle as name=path (repeatable)")
	verifyBundles := flag.Bool("verify-bundles", false, "verify per-section checksums when loading bundles")
	modelBudget := flag.Int64("model-budget", 0, "cap on summed resident model bytes (0 = unlimited)")
	workers := flag.Int("workers", 0, "batch decode workers (0 = GOMAXPROCS)")
	lanes := flag.Int("lanes", 0, "frame-synchronous decode lanes per model: concurrent utterances share one batched scorer call per frame (0 = classic per-worker paths)")
	rescue := flag.Int("rescue", 2, "search-failure rescue widenings per frame")
	lookahead := flag.Int("lookahead", 0, "score-ahead pipeline depth in frames: acoustic scoring runs up to this many frames ahead of the search, whole windows per scorer call (0 = synchronous; results identical either way)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	noPprof := flag.Bool("no-pprof", false, "disable the /debug/pprof endpoints")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent batch decodes (0 = pool workers)")
	maxQueue := flag.Int("max-queue", 0, "queued batch requests before shedding (0 = default 16)")
	maxStreams := flag.Int("max-streams", 0, "concurrent streams before shedding (0 = default 32)")
	defaultTimeout := flag.Duration("default-timeout", 0, "decode deadline for requests without their own (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on client-requested timeouts (0 = default 2m)")
	retryAfter := flag.Duration("retry-after", 0, "backoff hint on shed responses (0 = default 1s)")
	degradeLow := flag.Int("degrade-low", 0, "queue depth where search degradation starts (0 = max-queue/4)")
	degradeHigh := flag.Int("degrade-high", 0, "queue depth of deepest degradation (0 = 3*max-queue/4)")
	degradeLevels := flag.Int("degrade-levels", 0, "degradation ladder depth (0 = default 2, negative disables)")
	quarantineThreshold := flag.Int("quarantine-threshold", 3, "consecutive decode failures before a model is quarantined (negative disables)")
	reloadBackoff := flag.Duration("reload-backoff", 500*time.Millisecond, "base delay between quarantine reload attempts (doubles, jittered)")
	healthInterval := flag.Duration("health-interval", 10*time.Second, "period of the resident-model integrity re-check (0 disables)")
	streamWriteTimeout := flag.Duration("stream-write-timeout", 10*time.Second, "per-write deadline on stream results; a client that stops reading is cut (0 disables)")
	streamWatchdog := flag.Duration("stream-watchdog", 60*time.Second, "max wait for the next stream chunk before the decode is canceled (0 disables)")
	flag.Parse()

	buildTask := !strings.EqualFold(*taskName, "none")
	var spec task.Spec
	if buildTask {
		var err error
		spec, err = specFor(*taskName, *scale)
		if err != nil {
			fail(err)
		}
	} else if len(bundles) == 0 {
		fail(errors.New("-task none requires at least one -bundle name=path"))
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		Lanes:        *lanes,
		Decoder:      decoder.Config{PreemptivePruning: true, RescueWidenings: *rescue, Lookahead: *lookahead},
		DisablePprof: *noPprof,
		ModelBudget:  *modelBudget,
		Admission: server.AdmissionConfig{
			MaxConcurrent:  *maxConcurrent,
			MaxQueue:       *maxQueue,
			MaxStreams:     *maxStreams,
			DefaultTimeout: *defaultTimeout,
			MaxTimeout:     *maxTimeout,
			RetryAfter:     *retryAfter,
			DegradeLow:     *degradeLow,
			DegradeHigh:    *degradeHigh,
			DegradeLevels:  *degradeLevels,
		},
		Supervisor: server.SupervisorConfig{
			QuarantineThreshold: *quarantineThreshold,
			ReloadBackoff:       *reloadBackoff,
			HealthInterval:      *healthInterval,
		},
		Stream: server.StreamConfig{
			WriteTimeout: *streamWriteTimeout,
			Watchdog:     *streamWatchdog,
		},
	})

	// Listen before the model is ready: /healthz answers "loading" (503)
	// during construction, exactly what an orchestrator's readiness probe
	// wants to see.
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	if buildTask {
		fmt.Printf("unfold-serve: listening on %s (loading task %s)\n", *addr, spec.Name)
		sys, err := unfold.NewSystem(spec)
		if err != nil {
			fail(err)
		}
		if err := srv.Load(sys); err != nil {
			fail(err)
		}
		fp := sys.Footprint()
		fmt.Printf("unfold-serve: ready — task %s, datasets AM %.2f KB + LM %.2f KB, %d test utterances\n",
			spec.Name, float64(fp.AMBytes)/1024, float64(fp.LMBytes)/1024, len(sys.TestSet()))
	} else {
		fmt.Printf("unfold-serve: listening on %s (bundle-only mode)\n", *addr)
	}
	for _, b := range bundles {
		if err := srv.LoadBundle(b.name, b.path, *verifyBundles); err != nil {
			fail(fmt.Errorf("bundle %s: %w", b.name, err))
		}
	}
	for _, m := range srv.Models() {
		if m.Name == server.DefaultModel && buildTask {
			continue
		}
		fmt.Printf("unfold-serve: model %s ready — %.2f MB resident (mapped=%v), loaded in %.1f ms\n",
			m.Name, float64(m.ResidentBytes)/(1024*1024), m.Mapped, m.LoadSeconds*1000)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: readiness flips to 503 so load balancers route away,
	// then Shutdown waits for in-flight batch decodes and streams (each
	// stream's request context is canceled when the drain deadline passes,
	// which the per-frame cancellation checks turn into a prompt abort).
	fmt.Println("unfold-serve: draining...")
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "unfold-serve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("unfold-serve: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "unfold-serve:", err)
	os.Exit(1)
}
