// Command unfold-serve runs the streaming recognition server: it builds a
// synthetic benchmark task, loads it into an HTTP frontend, and serves
// batch and streaming recognition with full observability — Prometheus
// /metrics, /healthz readiness, net/http/pprof, and a /debug/spans ring of
// recent decode traces. SIGTERM/SIGINT drain gracefully: the health probe
// flips to 503 immediately, in-flight decodes finish, then the process
// exits.
//
// Examples:
//
//	unfold-serve -task voxforge -addr :8080
//	curl localhost:8080/healthz
//	curl localhost:8080/metrics | grep unfold_decoder
//	curl -s localhost:8080/v1/testset?utt=0 |
//	  jq '{utterances:[{frames:.data}]}' |
//	  curl -s -d @- localhost:8080/v1/recognize
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/decoder"
	"repro/internal/server"
	"repro/internal/task"

	unfold "repro"
)

func specFor(name string, scale float64) (task.Spec, error) {
	switch strings.ToLower(name) {
	case "tedlium":
		return unfold.KaldiTedlium(scale), nil
	case "librispeech":
		return unfold.KaldiLibrispeech(scale), nil
	case "voxforge":
		return unfold.KaldiVoxforge(scale), nil
	case "eesen":
		return unfold.EesenTedlium(scale), nil
	default:
		return task.Spec{}, fmt.Errorf("unknown task %q (tedlium, librispeech, voxforge, eesen)", name)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	taskName := flag.String("task", "voxforge", "task: tedlium, librispeech, voxforge, eesen")
	scale := flag.Float64("scale", 1.0, "task scale factor")
	workers := flag.Int("workers", 0, "batch decode workers (0 = GOMAXPROCS)")
	rescue := flag.Int("rescue", 2, "search-failure rescue widenings per frame")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
	noPprof := flag.Bool("no-pprof", false, "disable the /debug/pprof endpoints")
	flag.Parse()

	spec, err := specFor(*taskName, *scale)
	if err != nil {
		fail(err)
	}

	srv := server.New(server.Config{
		Workers:      *workers,
		Decoder:      decoder.Config{PreemptivePruning: true, RescueWidenings: *rescue},
		DisablePprof: *noPprof,
	})

	// Listen before the model is ready: /healthz answers "loading" (503)
	// during construction, exactly what an orchestrator's readiness probe
	// wants to see.
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()
	fmt.Printf("unfold-serve: listening on %s (loading task %s)\n", *addr, spec.Name)

	sys, err := unfold.NewSystem(spec)
	if err != nil {
		fail(err)
	}
	if err := srv.Load(sys); err != nil {
		fail(err)
	}
	fp := sys.Footprint()
	fmt.Printf("unfold-serve: ready — task %s, datasets AM %.2f KB + LM %.2f KB, %d test utterances\n",
		spec.Name, float64(fp.AMBytes)/1024, float64(fp.LMBytes)/1024, len(sys.TestSet()))

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: readiness flips to 503 so load balancers route away,
	// then Shutdown waits for in-flight batch decodes and streams (each
	// stream's request context is canceled when the drain deadline passes,
	// which the per-frame cancellation checks turn into a prompt abort).
	fmt.Println("unfold-serve: draining...")
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "unfold-serve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("unfold-serve: drained, bye")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "unfold-serve:", err)
	os.Exit(1)
}
