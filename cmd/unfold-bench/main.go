// unfold-bench measures the decode hot path and writes a machine-readable
// benchmark report (BENCH_PR3.json). It runs the same before/after
// comparison as BenchmarkFrontierDecode — the pooled tokenStore frontier
// (decoder.Decode) against the retained map frontier
// (decoder.DecodeReference), which produce byte-identical results — plus the
// streaming path and a DecodePool worker sweep, and derives per-frame
// figures: ns/frame, heap bytes/frame, heap objects/frame and the real-time
// factor.
//
// Usage:
//
//	unfold-bench [-out BENCH_PR3.json] [-workers 4]
//	unfold-bench -out /tmp/bench.json -check BENCH_PR3.json
//	unfold-bench -coldstart
//	unfold-bench -lanes
//
// With -check, the freshly measured report is compared row-by-row against
// the committed baseline and the process exits nonzero if any row's
// allocs/frame regressed beyond the tolerance — the CI smoke that keeps the
// zero-allocation frontier honest. Only allocation counts are gated:
// they are deterministic where wall-clock figures are machine-dependent.
//
// With -coldstart, the decode benchmarks are skipped; instead the tool
// builds tasks at several scales, saves each as both a v2 directory bundle
// and a v3 flat bundle, and measures cold-start load time and heap growth
// for the three load paths (v2 parse, v3 verified, v3 fast). This is the
// source for the docs/BENCHMARKS.md model-store table. The report goes to
// BENCH_COLDSTART.json unless -out overrides it; cold-start rows are never
// gated by -check (wall-clock load times are machine-dependent).
//
// With -lanes, the decode benchmarks are replaced by the batched-lane sweep:
// for the DNN and RNN scorer configurations (where dense scoring dominates
// the frame budget), the test set is decoded through frame-synchronous lane
// groups of width 1, 4 and 8, measuring scorer calls/frame, ns/frame and the
// real-time factor against the width-1 solo baseline. The report goes to
// BENCH_PR8.json unless -out overrides it; like cold-start rows, lane sweep
// rows are not gated by -check (the main report's lanes row carries the
// allocation gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"

	unfold "repro"
	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/task"
)

// benchSpec is the same fixture task the repo's Benchmark* functions use, so
// numbers are comparable with `make bench` output.
var benchSpec = task.Spec{
	Name:           "bench",
	Vocab:          40,
	Phones:         14,
	TrainSentences: 300,
	TestUtterances: 4,
	LMMinCount:     2,
	Seed:           2024,
}

// row is one benchmark line of the report.
type row struct {
	Name           string  `json:"name"`
	NsPerFrame     float64 `json:"ns_per_frame"`
	BytesPerFrame  float64 `json:"bytes_per_frame"`
	AllocsPerFrame float64 `json:"allocs_per_frame"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	RTF            float64 `json:"rtf"`
	UttPerSec      float64 `json:"utt_per_sec,omitempty"`
}

// report is the BENCH_PR3.json schema.
type report struct {
	Task       string `json:"task"`
	Frames     int    `json:"frames_per_op"`
	Utterances int    `json:"utterances_per_op"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Rows       []row  `json:"rows"`
	// Comparison summarizes tokenstore vs map-reference on the sequential
	// decode: how many times fewer heap objects and how many times faster.
	Comparison struct {
		AllocReduction float64 `json:"alloc_reduction_x"`
		Speedup        float64 `json:"speedup_x"`
	} `json:"comparison"`
}

// perFrame converts a testing.BenchmarkResult over framesPerOp frames into a
// report row.
func perFrame(name string, r testing.BenchmarkResult, framesPerOp int) row {
	total := float64(r.N) * float64(framesPerOp)
	nsPerFrame := float64(r.T.Nanoseconds()) / total
	return row{
		Name:           name,
		NsPerFrame:     nsPerFrame,
		BytesPerFrame:  float64(r.MemBytes) / total,
		AllocsPerFrame: float64(r.MemAllocs) / total,
		AllocsPerOp:    float64(r.MemAllocs) / float64(r.N),
		// One frame is 10 ms of audio; RTF = audio time / decode time.
		RTF: float64(metrics.FrameDuration.Nanoseconds()) / nsPerFrame,
	}
}

// checkAgainst compares the fresh report's allocation figures against a
// committed baseline. A row regresses when its allocs/frame exceeds the
// baseline by more than the multiplicative tolerance plus a small absolute
// slack (so near-zero baselines don't fail on measurement noise). Rows
// missing from either side are reported but not fatal: baselines age, and
// renaming a benchmark must not brick CI.
func checkAgainst(baselinePath string, rep report, tolerance float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	fresh := make(map[string]row, len(rep.Rows))
	for _, r := range rep.Rows {
		fresh[r.Name] = r
	}
	const slack = 0.05 // absolute allocs/frame headroom for ~zero baselines
	var failures []string
	for _, b := range base.Rows {
		r, ok := fresh[b.Name]
		if !ok {
			fmt.Printf("  check: baseline row %q not measured this run (skipped)\n", b.Name)
			continue
		}
		limit := b.AllocsPerFrame*tolerance + slack
		if r.AllocsPerFrame > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %.3f allocs/frame > limit %.3f (baseline %.3f x tolerance %.2f)",
				b.Name, r.AllocsPerFrame, limit, b.AllocsPerFrame, tolerance))
		} else {
			fmt.Printf("  check: %-24s %.3f allocs/frame <= %.3f ok\n", b.Name, r.AllocsPerFrame, limit)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("allocation regression against %s:\n  %s",
			baselinePath, strings.Join(failures, "\n  "))
	}
	return nil
}

// coldRow is one load-path measurement of the -coldstart mode.
type coldRow struct {
	Name           string  `json:"name"`             // "<scale>/<path>", e.g. "medium/v3-fast"
	BundleBytes    int64   `json:"bundle_bytes"`     // on-disk size of the loaded artifact
	LoadMs         float64 `json:"load_ms"`          // best-of-N wall time for one cold load
	HeapDeltaBytes int64   `json:"heap_delta_bytes"` // live-heap growth attributable to the loaded model
	Mapped         bool    `json:"mapped"`           // true when the bundle is served from an mmap
}

// coldReport is the BENCH_COLDSTART.json schema.
type coldReport struct {
	GoMaxProcs int       `json:"gomaxprocs"`
	Iterations int       `json:"iterations"`
	Rows       []coldRow `json:"rows"`
}

// heapLive forces a GC and reads the live-heap gauge, so two samples
// bracket exactly the allocations that survived between them.
func heapLive() int64 {
	runtime.GC()
	return int64(metrics.ReadMemoryFootprint().HeapLiveBytes)
}

// measureLoad runs one load path iters times, keeping the best wall time
// (cold-start cost is a floor, not an average — later runs only add page
// cache and scheduler noise), and samples live-heap growth while the last
// loaded model is still reachable.
func measureLoad(name string, path string, iters int, loadFn func(string) (*unfold.Recognizer, error)) coldRow {
	best := math.MaxFloat64
	var rec *unfold.Recognizer
	var heapDelta int64
	for i := 0; i < iters; i++ {
		before := heapLive()
		start := time.Now()
		r, err := loadFn(path)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		elapsed := float64(time.Since(start).Nanoseconds()) / 1e6
		heapDelta = heapLive() - before
		if rec != nil {
			rec.Close()
		}
		rec = r
		if elapsed < best {
			best = elapsed
		}
	}
	size := rec.ResidentBytes()
	if st, err := os.Stat(path); err == nil && !st.IsDir() {
		size = st.Size()
	}
	row := coldRow{
		Name:           name,
		BundleBytes:    size,
		LoadMs:         best,
		HeapDeltaBytes: heapDelta,
		Mapped:         rec.Mapped(),
	}
	rec.Close()
	return row
}

// runColdstart measures the three load paths across task scales. The v2
// directory bundle is parsed element by element, so its load time grows
// with model size; the v3 flat bundle's fast path only checks the header
// and section table, so its load time should stay flat as bundles grow —
// the O(1) cold-start property the flat store exists for.
func runColdstart(out string, iters int) {
	scales := []struct {
		name  string
		vocab int
		sents int
	}{
		{"small", 40, 300},
		{"medium", 80, 1200},
		{"large", 140, 3000},
	}
	rep := coldReport{GoMaxProcs: runtime.GOMAXPROCS(0), Iterations: iters}
	work, err := os.MkdirTemp("", "unfold-coldstart-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	for _, sc := range scales {
		spec := benchSpec
		spec.Name = "coldstart-" + sc.name
		spec.Vocab = sc.vocab
		spec.TrainSentences = sc.sents
		spec.TestUtterances = 1
		sys, err := unfold.NewSystem(spec)
		if err != nil {
			log.Fatal(err)
		}
		v2dir := filepath.Join(work, sc.name+"-v2")
		v3path := filepath.Join(work, sc.name+".ufb3")
		if err := sys.Save(v2dir); err != nil {
			log.Fatal(err)
		}
		if err := sys.SaveFlat(v3path); err != nil {
			log.Fatal(err)
		}
		rep.Rows = append(rep.Rows,
			measureLoad(sc.name+"/v2", v2dir, iters, unfold.LoadRecognizer),
			measureLoad(sc.name+"/v3-verify", v3path, iters, unfold.LoadRecognizer),
			measureLoad(sc.name+"/v3-fast", v3path, iters, unfold.LoadRecognizerFast),
		)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Rows {
		fmt.Printf("  %-18s %10.2f KB bundle %10.3f ms load %10.1f KB heap delta  mapped=%v\n",
			r.Name, float64(r.BundleBytes)/1024, r.LoadMs, float64(r.HeapDeltaBytes)/1024, r.Mapped)
	}
}

// laneRow is one measurement of the -lanes sweep: a scorer configuration
// decoded through a lane group of the given width. Scoring happens inside
// the group (raw frames in), so ns/frame covers the whole pipeline — dense
// scoring plus search — and the RTF is an end-to-end figure.
type laneRow struct {
	Scorer string `json:"scorer"`
	Lanes  int    `json:"lanes"`
	// ScorerCallsPerFrame is the dense-amortization headline: 1.0 means one
	// scorer invocation per lane-frame (solo shape), 1/width is the ideal
	// where every step scores the full group in one call.
	ScorerCallsPerFrame float64 `json:"scorer_calls_per_frame"`
	NsPerFrame          float64 `json:"ns_per_frame"`
	RTF                 float64 `json:"rtf"`
	// SpeedupVsSolo is this row's frame rate over the same scorer's lanes=1
	// row (1.0 for the solo rows themselves).
	SpeedupVsSolo float64 `json:"speedup_vs_solo"`
}

// laneReport is the BENCH_PR8.json schema.
type laneReport struct {
	Task       string    `json:"task"`
	Frames     int       `json:"frames_per_op"`
	Utterances int       `json:"utterances_per_op"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Rows       []laneRow `json:"rows"`
}

// runLaneWave decodes every utterance through the group with continuous
// batching: each drained lane is finished and immediately refilled with the
// next waiting utterance, so the group stays as full as the remaining work
// allows — the same scheduling shape pool.LaneScheduler runs concurrently.
func runLaneWave(g *decoder.LaneGroup, decs []*decoder.OnTheFly, utts [][][]float32) {
	next := 0
	var act []*decoder.Lane
	var actDec []int
	freeDecs := make([]int, len(decs))
	for i := range freeDecs {
		freeDecs[i] = i
	}
	join := func() {
		for next < len(utts) && len(freeDecs) > 0 {
			di := freeDecs[len(freeDecs)-1]
			freeDecs = freeDecs[:len(freeDecs)-1]
			l, err := g.Join(decs[di])
			if err != nil {
				log.Fatal(err)
			}
			l.Push(utts[next])
			next++
			act = append(act, l)
			actDec = append(actDec, di)
		}
	}
	join()
	for len(act) > 0 {
		g.Step()
		for i := 0; i < len(act); {
			if act[i].Pending() > 0 {
				i++
				continue
			}
			act[i].Finish()
			freeDecs = append(freeDecs, actDec[i])
			act[i] = act[len(act)-1]
			act = act[:len(act)-1]
			actDec[i] = actDec[len(actDec)-1]
			actDec = actDec[:len(actDec)-1]
		}
		join()
	}
}

// runLanes measures the batched-lane sweep: DNN and RNN scorer tasks decoded
// at lane widths 1, 4 and 8. The solo (width 1) row is the baseline the
// speedup column normalizes against.
func runLanes(out string) {
	widths := []int{1, 4, 8}
	rep := laneReport{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, kind := range []task.ScorerKind{task.ScorerDNN, task.ScorerRNN} {
		spec := benchSpec
		spec.Name = "bench-" + string(kind)
		spec.Scorer = kind
		spec.TestUtterances = 16 // enough to keep a width-8 group full
		tk, err := task.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		utts := make([][][]float32, len(tk.Test))
		frames := 0
		for i, u := range tk.Test {
			utts[i] = u.Frames
			frames += len(u.Frames)
		}
		rep.Task = benchSpec.Name
		rep.Frames = frames
		rep.Utterances = len(utts)

		var solo float64
		for _, w := range widths {
			g, err := decoder.NewLaneGroup(tk.Scorer, w)
			if err != nil {
				log.Fatal(err)
			}
			decs := make([]*decoder.OnTheFly, w)
			for i := range decs {
				decs[i], err = decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G, decoder.Config{PreemptivePruning: true})
				if err != nil {
					log.Fatal(err)
				}
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					runLaneWave(g, decs, utts)
				}
			})
			st := g.Stats()
			r := laneRow{
				Scorer:              string(kind),
				Lanes:               w,
				ScorerCallsPerFrame: st.ScorerCallsPerFrame(),
				NsPerFrame:          float64(res.T.Nanoseconds()) / (float64(res.N) * float64(frames)),
			}
			r.RTF = float64(metrics.FrameDuration.Nanoseconds()) / r.NsPerFrame
			if w == 1 {
				solo = r.NsPerFrame
			}
			if solo > 0 {
				r.SpeedupVsSolo = solo / r.NsPerFrame
			}
			rep.Rows = append(rep.Rows, r)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Rows {
		fmt.Printf("  %-4s lanes=%d %6.3f scorer calls/frame %8.0f ns/frame %6.1fx RT %5.2fx vs solo\n",
			r.Scorer, r.Lanes, r.ScorerCallsPerFrame, r.NsPerFrame, r.RTF, r.SpeedupVsSolo)
	}
}

// pipeRow is one measurement of the -pipeline sweep: a scorer configuration
// decoded end-to-end (scoring + search) either synchronously or through the
// score-ahead pipeline at the given lookahead depth.
type pipeRow struct {
	Scorer string `json:"scorer"`
	// Lookahead is the pipeline depth; 0 is the synchronous baseline row
	// (ScoreUtterance then Decode, the pre-pipeline shape).
	Lookahead  int     `json:"lookahead"`
	NsPerFrame float64 `json:"ns_per_frame"`
	RTF        float64 `json:"rtf"`
	// SpeedupVsSync is this row's frame rate over the same scorer's
	// synchronous row (1.0 for the sync rows themselves).
	SpeedupVsSync float64 `json:"speedup_vs_sync"`
}

// pipeReport is the BENCH_PR9.json schema.
type pipeReport struct {
	Task       string    `json:"task"`
	Frames     int       `json:"frames_per_op"`
	Utterances int       `json:"utterances_per_op"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Rows       []pipeRow `json:"rows"`
}

// runPipeline measures the score-ahead sweep: DNN and RNN scorer tasks
// decoded end-to-end, synchronous versus pipelined at lookahead 4, 8 and 16.
// Both shapes include dense scoring in ns/frame, so the speedup column is
// the whole-decoder effect of window-batched scoring (and, on multi-core
// hosts, of overlapping it with the search).
func runPipeline(out string) {
	lookaheads := []int{4, 8, 16}
	rep := pipeReport{GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, kind := range []task.ScorerKind{task.ScorerDNN, task.ScorerRNN} {
		spec := benchSpec
		spec.Name = "bench-" + string(kind)
		spec.Scorer = kind
		tk, err := task.Build(spec)
		if err != nil {
			log.Fatal(err)
		}
		frames := 0
		for _, u := range tk.Test {
			frames += len(u.Frames)
		}
		rep.Task = benchSpec.Name
		rep.Frames = frames
		rep.Utterances = len(tk.Test)

		newDec := func(lookahead int) *decoder.OnTheFly {
			d, err := decoder.NewOnTheFly(tk.AM.G, tk.LMGraph.G,
				decoder.Config{PreemptivePruning: true, Lookahead: lookahead})
			if err != nil {
				log.Fatal(err)
			}
			return d
		}

		// Synchronous baseline: score the whole utterance, then search it.
		dSync := newDec(0)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, u := range tk.Test {
					dSync.Decode(tk.Scorer.ScoreUtterance(u.Frames))
				}
			}
		})
		sync := pipeRow{
			Scorer:        string(kind),
			NsPerFrame:    float64(res.T.Nanoseconds()) / (float64(res.N) * float64(frames)),
			SpeedupVsSync: 1,
		}
		sync.RTF = float64(metrics.FrameDuration.Nanoseconds()) / sync.NsPerFrame
		rep.Rows = append(rep.Rows, sync)

		for _, k := range lookaheads {
			p, err := decoder.NewPipeline(newDec(k), tk.Scorer)
			if err != nil {
				log.Fatal(err)
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, u := range tk.Test {
						p.Decode(u.Frames)
					}
				}
			})
			p.Close()
			r := pipeRow{
				Scorer:     string(kind),
				Lookahead:  k,
				NsPerFrame: float64(res.T.Nanoseconds()) / (float64(res.N) * float64(frames)),
			}
			r.RTF = float64(metrics.FrameDuration.Nanoseconds()) / r.NsPerFrame
			r.SpeedupVsSync = sync.NsPerFrame / r.NsPerFrame
			rep.Rows = append(rep.Rows, r)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
	for _, r := range rep.Rows {
		mode := "sync"
		if r.Lookahead > 0 {
			mode = fmt.Sprintf("k=%d", r.Lookahead)
		}
		fmt.Printf("  %-4s %-6s %8.0f ns/frame %6.1fx RT %5.2fx vs sync\n",
			r.Scorer, mode, r.NsPerFrame, r.RTF, r.SpeedupVsSync)
	}
}

func main() {
	out := flag.String("out", "BENCH_PR3.json", "report path")
	workers := flag.Int("workers", 4, "DecodePool worker count for the parallel row")
	check := flag.String("check", "", "baseline report to gate against; exits nonzero on allocation regression")
	tolerance := flag.Float64("tolerance", 1.25, "multiplicative allocs/frame headroom for -check")
	coldstart := flag.Bool("coldstart", false, "measure model cold-start load paths instead of decode throughput")
	coldIters := flag.Int("coldstart-iters", 5, "load repetitions per cold-start row (best time wins)")
	laneSweep := flag.Bool("lanes", false, "measure the batched-lane width sweep (BENCH_PR8.json) instead of decode throughput")
	pipelineSweep := flag.Bool("pipeline", false, "measure the score-ahead pipeline sweep (BENCH_PR9.json) instead of decode throughput")
	lookahead := flag.Int("lookahead", 8, "pipeline depth of the main report's pipeline row")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering the measured benchmarks")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *coldstart {
		coldOut := *out
		if coldOut == "BENCH_PR3.json" {
			coldOut = "BENCH_COLDSTART.json"
		}
		runColdstart(coldOut, *coldIters)
		return
	}
	if *laneSweep {
		laneOut := *out
		if laneOut == "BENCH_PR3.json" {
			laneOut = "BENCH_PR8.json"
		}
		runLanes(laneOut)
		return
	}
	if *pipelineSweep {
		pipeOut := *out
		if pipeOut == "BENCH_PR3.json" {
			pipeOut = "BENCH_PR9.json"
		}
		runPipeline(pipeOut)
		return
	}

	sys, err := unfold.NewSystem(benchSpec)
	if err != nil {
		log.Fatal(err)
	}
	var scores [][][]float32
	frames := 0
	for _, u := range sys.TestSet() {
		sc := sys.Task.Scorer.ScoreUtterance(u.Frames)
		scores = append(scores, sc)
		frames += len(sc)
	}
	cfg := decoder.Config{PreemptivePruning: true}

	newDecoder := func() *decoder.OnTheFly {
		d, err := sys.NewDecoder(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}

	rep := report{
		Task:       benchSpec.Name,
		Frames:     frames,
		Utterances: len(scores),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}

	// Sequential decode, pooled tokenStore frontier (the shipped path).
	dStore := newDecoder()
	store := perFrame("decode/tokenstore", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sc := range scores {
				dStore.Decode(sc)
			}
		}
	}), frames)
	rep.Rows = append(rep.Rows, store)

	// Sequential decode, retained per-frame map frontier (the baseline).
	dRef := newDecoder()
	ref := perFrame("decode/map-reference", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sc := range scores {
				dRef.DecodeReference(sc)
			}
		}
	}), frames)
	rep.Rows = append(rep.Rows, ref)

	// Streaming decode (frame-at-a-time Push) over the pooled frontier.
	dStream := newDecoder()
	rep.Rows = append(rep.Rows, perFrame("stream/tokenstore", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, sc := range scores {
				s := dStream.NewStream()
				for _, frame := range sc {
					if err := s.Push(frame); err != nil {
						log.Fatal(err)
					}
				}
				s.Finish()
			}
		}
	}), frames))

	// Parallel batch decode through the worker pool (batch of 16 utterances).
	var batch [][][]float32
	for len(batch) < 16 {
		batch = append(batch, scores...)
	}
	batchFrames := 0
	for _, sc := range batch {
		batchFrames += len(sc)
	}
	p, err := pool.New(sys.Task.AM.G, sys.Task.LMGraph.G, pool.Config{Workers: *workers, Decoder: cfg})
	if err != nil {
		log.Fatal(err)
	}
	var lastBatch *pool.Batch
	par := perFrame(fmt.Sprintf("pool/workers=%d", *workers), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			lastBatch, err = p.Decode(batch)
			if err != nil {
				log.Fatal(err)
			}
		}
	}), batchFrames)
	if lastBatch != nil {
		par.UttPerSec = lastBatch.Throughput.UtterancesPerSec()
	}
	rep.Rows = append(rep.Rows, par)

	// Batched lane decode: the test set in frame-synchronous lockstep (raw
	// frames in — scoring happens inside the group, one batched call per
	// step). Steady-state lane stepping allocates nothing; the per-op bill
	// is the Result constructions at Finish, which is what the -check gate
	// holds alongside the other frontier rows.
	var laneUtts [][][]float32
	laneFrames := 0
	for _, u := range sys.TestSet() {
		laneUtts = append(laneUtts, u.Frames)
		laneFrames += len(u.Frames)
	}
	lg, err := decoder.NewLaneGroup(sys.Task.Scorer, 4)
	if err != nil {
		log.Fatal(err)
	}
	laneDecs := make([]*decoder.OnTheFly, 4)
	for i := range laneDecs {
		laneDecs[i] = newDecoder()
	}
	rep.Rows = append(rep.Rows, perFrame("lanes/width=4", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runLaneWave(lg, laneDecs, laneUtts)
		}
	}), laneFrames))

	// Score-ahead pipeline decode (raw frames in, like the lane row): the
	// -check gate holds its allocation bill — the ring, window state and
	// producer handoff must stay out of the steady-state heap.
	pcfg := cfg
	pcfg.Lookahead = *lookahead
	pd, err := sys.NewDecoder(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := decoder.NewPipeline(pd, sys.Task.Scorer)
	if err != nil {
		log.Fatal(err)
	}
	rep.Rows = append(rep.Rows, perFrame(fmt.Sprintf("pipeline/k=%d", *lookahead), testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, u := range laneUtts {
				pl.Decode(u)
			}
		}
	}), laneFrames))
	pl.Close()

	// Per-op (whole test set) object counts: the store path's fixed
	// per-utterance bill (Result construction) keeps this finite even though
	// its steady-state per-frame figure is zero.
	if store.AllocsPerOp > 0 {
		rep.Comparison.AllocReduction = ref.AllocsPerOp / store.AllocsPerOp
	}
	if store.NsPerFrame > 0 {
		rep.Comparison.Speedup = ref.NsPerFrame / store.NsPerFrame
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, r := range rep.Rows {
		fmt.Printf("  %-24s %8.0f ns/frame %8.0f B/frame %6.2f allocs/frame %6.1fx RT\n",
			r.Name, r.NsPerFrame, r.BytesPerFrame, r.AllocsPerFrame, r.RTF)
	}
	fmt.Printf("  tokenstore vs map-reference: %.1fx fewer allocs, %.1fx faster\n",
		rep.Comparison.AllocReduction, rep.Comparison.Speedup)

	if *check != "" {
		if err := checkAgainst(*check, rep, *tolerance); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  no allocation regressions against %s\n", *check)
	}
}
