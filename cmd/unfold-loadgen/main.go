// Command unfold-loadgen drives an unfold-serve instance with open-loop
// load — requests launch on a fixed schedule regardless of how fast the
// server answers, which is what makes overload visible: a closed-loop
// client slows down with the server and never exposes the shedding path.
//
// Utterances are synthesized from the same seeded task generator the
// server uses, so the run is reproducible end to end: same -task, -scale
// and -seed produce byte-identical feature frames. The target rate is
// either explicit (-rps) or calibrated: a short sequential warm-up
// measures per-decode latency, capacity is estimated as
// workers/median-latency, and the run drives -multiplier times that.
//
// The report is one JSON object on stdout: outcome counts (ok, shed,
// deadline, errors), accepted-latency percentiles, and degraded-decode
// counts. Exit status is the CI contract: nonzero when any 5xx or
// transport failure occurred, or when accepted p99 exceeds -max-p99.
//
// -chaos turns the run into a fault drill (docs/ROBUSTNESS.md): while the
// normal load keeps hammering the default model, the generator corrupts
// the bundle behind -chaos-model in place on disk (it must share a
// filesystem with the server), parks stalled streaming clients on the
// server, and probes the victim model throughout. Past the heal point it
// restores the bundle and waits for the supervisor to reload the victim.
// The chaos contract extends the exit status: the victim must be seen
// quarantined (the server needs -health-interval set low enough), must
// return to ready after the heal, and neither model may answer 5xx.
//
// Examples:
//
// -tenants turns the run into a multi-tenant biased-decoding drill: each
// request carries a bias block for one of N synthetic tenants, picked from
// a Zipf distribution (-zipf) so a hot head of tenants dominates while a
// long tail churns the server's per-tenant caches. Every tenant's phrase
// list is deterministic in the task seed. The report gains a bias section
// scraped from the server's /metrics: compile-cache hit rates and
// per-tenant offset-cache hit rates, with zero 5xx as the pass bar.
//
// Examples:
//
//	unfold-loadgen -target http://localhost:8080 -rps 20 -duration 30s
//	unfold-loadgen -multiplier 4 -duration 10s -max-p99 8s   # 4x capacity
//	unfold-loadgen -rps 10 -duration 12s -chaos -chaos-bundle /models/vox.ufb3 -chaos-model vox
//	unfold-loadgen -rps 20 -duration 15s -tenants 32 -zipf 1.2   # tenant churn
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	unfold "repro"
	"repro/internal/faultinject"
	"repro/internal/task"
)

type options struct {
	target      string
	taskName    string
	scale       float64
	seed        int64
	rps         float64
	multiplier  float64
	duration    time.Duration
	streamFrac  float64
	timeout     time.Duration
	uttFrames   int
	maxInflight int
	waitReady   time.Duration
	maxP99      time.Duration
	chaos       bool
	chaosBundle string
	chaosModel  string
	chaosSeed   int64
	chaosStalls int
	tenants     int
	zipfS       float64
	biasWords   int
	biasBonus   float64
}

// report is the JSON document the run prints.
type report struct {
	TargetRPS     float64        `json:"target_rps"`
	AchievedRPS   float64        `json:"achieved_rps"`
	Duration      string         `json:"duration"`
	Sent          int64          `json:"sent"`
	Outcomes      map[string]int `json:"outcomes"`
	Degraded      int64          `json:"degraded"`
	LatencyMs     latencyReport  `json:"accepted_latency_ms"`
	CapacityRPS   float64        `json:"calibrated_capacity_rps,omitempty"`
	Chaos         *chaosReport   `json:"chaos,omitempty"`
	Bias          *biasReport    `json:"bias,omitempty"`
	FailureReason string         `json:"failure_reason,omitempty"`
}

// biasReport is the -tenants section: the server-side view of the tenant
// churn, scraped from /metrics after the load stops.
type biasReport struct {
	Tenants            int     `json:"tenants"`
	CompileHits        float64 `json:"compile_cache_hits"`
	CompileMisses      float64 `json:"compile_cache_misses"`
	CompileHitRate     float64 `json:"compile_cache_hit_rate"`
	PartitionsResident float64 `json:"cache_partitions_resident"`
	PartitionsDropped  float64 `json:"cache_partitions_dropped"`
	// TenantHitRate is each tenant's offset-cache hit rate across the
	// server's schedulers (unfold_bias_l2_tenant_* series). Only tenants
	// the server still tracks appear; partitioned-away tails show up in
	// PartitionsDropped instead.
	TenantHitRate map[string]float64 `json:"tenant_cache_hit_rate"`
}

// chaosReport is the -chaos section of the run report: what was injected,
// what the victim model answered, and whether the supervisor healed it.
type chaosReport struct {
	Model          string         `json:"model"`
	StalledStreams int            `json:"stalled_streams"`
	CorruptAtMs    float64        `json:"corrupt_at_ms"`
	HealAtMs       float64        `json:"heal_at_ms"`
	VictimOutcomes map[string]int `json:"victim_outcomes"`
	SawQuarantine  bool           `json:"saw_quarantine"`
	Recovered      bool           `json:"recovered"`
	RecoveryMs     float64        `json:"recovery_ms,omitempty"`
}

type latencyReport struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

func main() {
	var o options
	flag.StringVar(&o.target, "target", "http://localhost:8080", "base URL of the server under test")
	flag.StringVar(&o.taskName, "task", "voxforge", "task: tedlium, librispeech, voxforge, eesen (must match the server)")
	flag.Float64Var(&o.scale, "scale", 1.0, "task scale factor (must match the server)")
	flag.Int64Var(&o.seed, "seed", 0, "override the task seed (0 = the task's own)")
	flag.Float64Var(&o.rps, "rps", 0, "target requests/sec (0 = calibrate and use -multiplier)")
	flag.Float64Var(&o.multiplier, "multiplier", 4, "target = multiplier x calibrated capacity when -rps is 0")
	flag.DurationVar(&o.duration, "duration", 10*time.Second, "length of the measured run")
	flag.Float64Var(&o.streamFrac, "stream-fraction", 0.2, "fraction of requests sent as /v1/stream")
	flag.DurationVar(&o.timeout, "timeout", 5*time.Second, "per-request decode deadline sent to the server")
	flag.IntVar(&o.uttFrames, "utt-frames", 60, "cap utterance length in frames (0 = full utterances)")
	flag.IntVar(&o.maxInflight, "max-inflight", 256, "client-side concurrency cap; launches past it count as client_overrun")
	flag.DurationVar(&o.waitReady, "wait-ready", 30*time.Second, "max wait for /healthz to report ready (0 = don't wait)")
	flag.DurationVar(&o.maxP99, "max-p99", 0, "fail when accepted p99 exceeds this (0 = no bound)")
	flag.BoolVar(&o.chaos, "chaos", false, "inject faults during the run and assert the server self-heals")
	flag.StringVar(&o.chaosBundle, "chaos-bundle", "", "bundle file to corrupt in place (must be the file the server serves -chaos-model from)")
	flag.StringVar(&o.chaosModel, "chaos-model", "victim", "model name the server loaded -chaos-bundle under")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 42, "seed for the corruption site")
	flag.IntVar(&o.chaosStalls, "chaos-stalls", 2, "stalled streaming clients to park on the server")
	flag.IntVar(&o.tenants, "tenants", 0, "attach per-tenant bias blocks across this many synthetic tenants (0 = no biasing)")
	flag.Float64Var(&o.zipfS, "zipf", 1.2, "Zipf exponent for the tenant pick (must be > 1; used with -tenants)")
	flag.IntVar(&o.biasWords, "bias-phrases", 3, "bias phrases per tenant, drawn from the task's reference transcripts")
	flag.Float64Var(&o.biasBonus, "bias-bonus", 0, "per-word bias bonus sent with each block (0 = server default)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "unfold-loadgen:", err)
		os.Exit(1)
	}
}

func specFor(name string, scale float64) (task.Spec, error) {
	switch strings.ToLower(name) {
	case "tedlium":
		return unfold.KaldiTedlium(scale), nil
	case "librispeech":
		return unfold.KaldiLibrispeech(scale), nil
	case "voxforge":
		return unfold.KaldiVoxforge(scale), nil
	case "eesen":
		return unfold.EesenTedlium(scale), nil
	default:
		return task.Spec{}, fmt.Errorf("unknown task %q (tedlium, librispeech, voxforge, eesen)", name)
	}
}

// utterances synthesizes the request payloads from the seeded generator.
// The second return is each test utterance's reference transcript as
// surface words — the in-lexicon raw material -tenants builds phrase lists
// from.
func utterances(o options) ([][][]float32, [][]string, error) {
	spec, err := specFor(o.taskName, o.scale)
	if err != nil {
		return nil, nil, err
	}
	if o.seed != 0 {
		spec.Seed = o.seed
	}
	tk, err := task.Build(spec)
	if err != nil {
		return nil, nil, err
	}
	var utts [][][]float32
	var refs [][]string
	for _, u := range tk.Test {
		frames := u.Frames
		if o.uttFrames > 0 && len(frames) > o.uttFrames {
			frames = frames[:o.uttFrames]
		}
		utts = append(utts, frames)
		words := make([]string, len(u.Words))
		for i, id := range u.Words {
			words[i] = tk.Lex.Words[id]
		}
		refs = append(refs, words)
	}
	if len(utts) == 0 {
		return nil, nil, fmt.Errorf("task %s produced no test utterances", spec.Name)
	}
	return utts, refs, nil
}

// tenantBlocks builds each synthetic tenant's pre-marshaled bias block.
// Tenant i's phrases are single words cycled from the reference
// transcripts starting at utterance i, so neighboring tenants bias
// different vocabulary and every block is deterministic in the task seed.
func tenantBlocks(o options, refs [][]string) [][]byte {
	blocks := make([][]byte, o.tenants)
	for ti := range blocks {
		var phrases []string
		seen := map[string]bool{}
		for w := 0; len(phrases) < o.biasWords && w < o.biasWords*4; w++ {
			ref := refs[(ti+w)%len(refs)]
			if len(ref) == 0 {
				continue
			}
			word := ref[(ti+w)%len(ref)]
			if !seen[word] {
				seen[word] = true
				phrases = append(phrases, word)
			}
		}
		block := map[string]any{
			"tenant":  fmt.Sprintf("tenant-%03d", ti),
			"phrases": phrases,
		}
		if o.biasBonus > 0 {
			block["bonus"] = o.biasBonus
		}
		blocks[ti], _ = json.Marshal(block)
	}
	return blocks
}

// withBias splices a pre-marshaled bias block into a pre-marshaled
// /v1/recognize body (which always ends in '}'), so the hot launch path
// never re-marshals feature frames.
func withBias(body, block []byte) []byte {
	out := make([]byte, 0, len(body)+len(block)+9)
	out = append(out, body[:len(body)-1]...)
	out = append(out, `,"bias":`...)
	out = append(out, block...)
	return append(out, '}')
}

// waitReady polls /healthz until the server reports ready.
func waitReady(client *http.Client, target string, limit time.Duration) (workers int, err error) {
	deadline := time.Now().Add(limit)
	for {
		resp, err := client.Get(target + "/healthz")
		if err == nil {
			var h struct {
				Status  string `json:"status"`
				Workers struct {
					Total int `json:"total"`
				} `json:"workers"`
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && json.Unmarshal(body, &h) == nil {
				return h.Workers.Total, nil
			}
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("server at %s not ready after %v", target, limit)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// tally is the thread-safe outcome accumulator.
type tally struct {
	mu        sync.Mutex
	outcomes  map[string]int
	latencies []time.Duration
	degraded  int64
	sent      atomic.Int64
}

func newTally() *tally { return &tally{outcomes: map[string]int{}} }

func (tl *tally) record(outcome string, latency time.Duration, degraded bool) {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.outcomes[outcome]++
	if outcome == "ok" {
		tl.latencies = append(tl.latencies, latency)
		if degraded {
			tl.degraded++
		}
	}
}

func classify(status int) string {
	switch {
	case status == http.StatusOK:
		return "ok"
	case status == http.StatusTooManyRequests:
		return "shed"
	case status == http.StatusRequestTimeout:
		return "deadline"
	case status == http.StatusServiceUnavailable:
		return "unavailable"
	case status >= 500:
		return "5xx"
	default:
		return fmt.Sprintf("http_%d", status)
	}
}

// oneBatch posts a single-utterance batch and classifies the reply.
func oneBatch(client *http.Client, o options, tl *tally, body []byte) {
	start := time.Now()
	resp, err := client.Post(o.target+"/v1/recognize", "application/json", bytes.NewReader(body))
	if err != nil {
		tl.record("transport_error", 0, false)
		return
	}
	defer resp.Body.Close()
	outcome := classify(resp.StatusCode)
	degraded := false
	if resp.StatusCode == http.StatusOK {
		var r struct {
			Degraded int `json:"degraded"`
		}
		if json.NewDecoder(resp.Body).Decode(&r) != nil {
			outcome = "bad_body"
		}
		degraded = r.Degraded > 0
	}
	io.Copy(io.Discard, resp.Body)
	tl.record(outcome, time.Since(start), degraded)
}

// oneStream runs a two-chunk NDJSON stream and classifies the final line.
// A non-nil biasBlock rides on the first line, biasing the whole stream.
func oneStream(client *http.Client, o options, tl *tally, frames [][]float32, biasBlock []byte) {
	start := time.Now()
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, o.target+"/v1/stream", pr)
	if err != nil {
		tl.record("transport_error", 0, false)
		return
	}
	req.Header.Set("X-Unfold-Timeout", o.timeout.String())
	go func() {
		enc := json.NewEncoder(pw)
		half := len(frames) / 2
		if half == 0 {
			half = len(frames)
		}
		first := map[string]any{"frames": frames[:half]}
		if biasBlock != nil {
			first["bias"] = json.RawMessage(biasBlock)
		}
		enc.Encode(first)
		if half < len(frames) {
			enc.Encode(map[string][][]float32{"frames": frames[half:]})
		}
		pw.Close()
	}()
	resp, err := client.Do(req)
	if err != nil {
		tl.record("transport_error", 0, false)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		tl.record(classify(resp.StatusCode), 0, false)
		return
	}
	sc := bufio.NewScanner(resp.Body)
	var final struct {
		Final    bool   `json:"final"`
		Degraded int    `json:"degraded"`
		Error    string `json:"error"`
	}
	sawFinal := false
	for sc.Scan() {
		if json.Unmarshal(sc.Bytes(), &final) == nil && final.Final {
			sawFinal = true
		}
	}
	switch {
	case !sawFinal:
		tl.record("stream_truncated", 0, false)
	case final.Error != "":
		tl.record("stream_error", 0, false)
	default:
		tl.record("ok", time.Since(start), final.Degraded > 0)
	}
}

// scrapeBias pulls the server's unfold_bias_* series from /metrics into
// the report: compile-cache traffic, partition residency/churn, and each
// still-tracked tenant's offset-cache hit rate (summed across the pool,
// lane and stream schedulers).
func scrapeBias(client *http.Client, o options) (*biasReport, error) {
	resp, err := client.Get(o.target + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	br := &biasReport{Tenants: o.tenants, TenantHitRate: map[string]float64{}}
	hits, misses := map[string]float64{}, map[string]float64{}
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(line[sp+1:]), 64)
		if err != nil {
			continue
		}
		series := line[:sp]
		name, labels := series, ""
		if i := strings.IndexByte(series, '{'); i >= 0 {
			name, labels = series[:i], series[i:]
		}
		tenant := ""
		if i := strings.Index(labels, `tenant="`); i >= 0 {
			rest := labels[i+len(`tenant="`):]
			if j := strings.IndexByte(rest, '"'); j >= 0 {
				tenant = rest[:j]
			}
		}
		switch name {
		case "unfold_bias_compile_cache_hits_total":
			br.CompileHits += v
		case "unfold_bias_compile_cache_misses_total":
			br.CompileMisses += v
		case "unfold_bias_tenant_partitions":
			br.PartitionsResident += v
		case "unfold_bias_tenant_partitions_dropped_total":
			br.PartitionsDropped += v
		case "unfold_bias_l2_tenant_hits_total":
			hits[tenant] += v
		case "unfold_bias_l2_tenant_misses_total":
			misses[tenant] += v
		}
	}
	for t, h := range hits {
		if tot := h + misses[t]; tot > 0 {
			br.TenantHitRate[t] = h / tot
		}
	}
	for t, m := range misses {
		if _, ok := hits[t]; !ok && m > 0 {
			br.TenantHitRate[t] = 0
		}
	}
	if tot := br.CompileHits + br.CompileMisses; tot > 0 {
		br.CompileHitRate = br.CompileHits / tot
	}
	return br, nil
}

// modelState fetches one model's lifecycle state from /v1/models.
func modelState(client *http.Client, target, name string) (string, error) {
	resp, err := client.Get(target + "/v1/models")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var list struct {
		Models []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return "", err
	}
	for _, m := range list.Models {
		if m.Name == name {
			return m.State, nil
		}
	}
	return "", fmt.Errorf("model %q not in /v1/models", name)
}

// chaosRun is the fault director for -chaos: at one fifth of the run it
// parks stalled streaming clients on the server and corrupts the victim
// bundle in place; until three fifths it probes the sick model (structured
// 503s are the contract, 5xx and dropped connections are failures); then it
// heals the bundle and waits for the supervisor's backoff reload to bring
// the victim back to ready. The injected faults are deterministic in
// -chaos-seed so a failing drill replays exactly.
func chaosRun(o options, start time.Time, probeBody, stallLine []byte) (*chaosReport, error) {
	cr := &chaosReport{Model: o.chaosModel, VictimOutcomes: map[string]int{}}
	client := &http.Client{Timeout: o.timeout + 5*time.Second}
	corruptAt := o.duration / 5
	healAt := 3 * o.duration / 5
	time.Sleep(time.Until(start.Add(corruptAt)))

	// Stalled clients promise a megabyte of frames and go silent: the
	// server's stream watchdog — not this process — must free those slots.
	var stalls []*faultinject.StalledStream
	defer func() {
		for _, st := range stalls {
			st.Close()
		}
	}()
	for i := 0; i < o.chaosStalls; i++ {
		st, err := faultinject.StallStream(o.target, "/v1/stream", stallLine)
		if err != nil {
			return cr, fmt.Errorf("stall %d: %w", i, err)
		}
		stalls = append(stalls, st)
	}
	cr.StalledStreams = len(stalls)

	sab := &faultinject.Saboteur{Path: o.chaosBundle}
	if err := sab.Corrupt(o.chaosSeed); err != nil {
		return cr, fmt.Errorf("corrupt %s: %w", o.chaosBundle, err)
	}
	cr.CorruptAtMs = float64(time.Since(start)) / float64(time.Millisecond)
	defer sab.Heal() // never leave the bundle damaged, even on error paths

	for time.Now().Before(start.Add(healAt)) {
		if state, err := modelState(client, o.target, o.chaosModel); err == nil && state == "quarantined" {
			cr.SawQuarantine = true
		}
		resp, err := client.Post(o.target+"/v1/recognize?model="+url.QueryEscape(o.chaosModel),
			"application/json", bytes.NewReader(probeBody))
		if err != nil {
			cr.VictimOutcomes["transport_error"]++
		} else {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			cr.VictimOutcomes[classify(resp.StatusCode)]++
		}
		time.Sleep(100 * time.Millisecond)
	}

	if err := sab.Heal(); err != nil {
		return cr, fmt.Errorf("heal %s: %w", o.chaosBundle, err)
	}
	healTime := time.Now()
	cr.HealAtMs = float64(healTime.Sub(start)) / float64(time.Millisecond)
	for _, st := range stalls {
		st.Close()
	}
	stalls = nil

	// Recovery is the server's job now: the next backoff attempt reloads the
	// healed bundle. -wait-ready bounds how long that may take.
	wait := o.waitReady
	if wait <= 0 {
		wait = 30 * time.Second
	}
	deadline := start.Add(o.duration).Add(wait)
	for time.Now().Before(deadline) {
		if state, err := modelState(client, o.target, o.chaosModel); err == nil && state == "ready" {
			cr.Recovered = true
			cr.RecoveryMs = float64(time.Since(healTime)) / float64(time.Millisecond)
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	return cr, nil
}

// calibrate measures sequential decode latency and estimates the server's
// aggregate capacity as workers / median-latency.
func calibrate(client *http.Client, o options, body []byte, workers int) (float64, error) {
	const probes = 8
	lat := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		resp, err := client.Post(o.target+"/v1/recognize", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, fmt.Errorf("calibration request failed: %w", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("calibration got status %d", resp.StatusCode)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	median := lat[len(lat)/2]
	if median <= 0 {
		median = time.Millisecond
	}
	if workers <= 0 {
		workers = 1
	}
	return float64(workers) / median.Seconds(), nil
}

func percentileMs(d []time.Duration, p float64) float64 {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return float64(s[int(p*float64(len(s)-1))]) / float64(time.Millisecond)
}

func run(o options) error {
	if o.chaos && o.chaosBundle == "" {
		return fmt.Errorf("-chaos requires -chaos-bundle (the file to corrupt)")
	}
	if o.tenants > 0 && o.zipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1 (got %v)", o.zipfS)
	}
	utts, refs, err := utterances(o)
	if err != nil {
		return err
	}
	client := &http.Client{}

	workers := 0
	if o.waitReady > 0 {
		if workers, err = waitReady(client, o.target, o.waitReady); err != nil {
			return err
		}
	}

	// Request bodies are pre-marshaled: the generator cycles through the
	// task's utterances so the server sees realistic variety.
	bodies := make([][]byte, len(utts))
	for i, frames := range utts {
		bodies[i], _ = json.Marshal(map[string]any{
			"utterances": []map[string]any{{"frames": frames}},
			"timeout":    o.timeout.String(),
		})
	}

	// The tenant pick runs in the single-threaded launch loop (rand.Zipf is
	// not goroutine-safe) and is deterministic in the task seed, so a run
	// replays the same tenant sequence.
	var biasBlocks [][]byte
	var pickTenant func() int
	if o.tenants > 0 {
		biasBlocks = tenantBlocks(o, refs)
		rng := rand.New(rand.NewSource(o.seed*7919 + 12345))
		zipf := rand.NewZipf(rng, o.zipfS, 1, uint64(o.tenants-1))
		pickTenant = func() int { return int(zipf.Uint64()) }
	}

	rep := report{Outcomes: map[string]int{}}
	rate := o.rps
	if rate <= 0 {
		capacity, err := calibrate(client, o, bodies[0], workers)
		if err != nil {
			return err
		}
		rep.CapacityRPS = capacity
		rate = o.multiplier * capacity
	}
	if rate <= 0.01 {
		rate = 0.01
	}
	rep.TargetRPS = rate

	tl := newTally()
	interval := time.Duration(float64(time.Second) / rate)
	stop := time.Now().Add(o.duration)
	streamEvery := 0
	if o.streamFrac > 0 {
		streamEvery = int(1 / o.streamFrac)
	}

	// Open-loop pacing: launch i fires at start + i*interval regardless of
	// how earlier requests fared. A fixed in-flight cap keeps the client
	// itself from melting when the schedule outruns the server — launches
	// past the cap are tallied as client_overrun, the open-loop equivalent
	// of the server's own shed.
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.maxInflight)
	start := time.Now()

	// The chaos director runs beside the load and outlives it: after the
	// heal it keeps polling until the victim recovers (or -wait-ready runs
	// out), so the report always has a verdict.
	var chaosDone chan struct{}
	var chaosErr error
	if o.chaos {
		head := len(utts[0])
		if head > 2 {
			head = 2
		}
		stallLine, _ := json.Marshal(map[string][][]float32{"frames": utts[0][:head]})
		stallLine = append(stallLine, '\n')
		chaosDone = make(chan struct{})
		go func() {
			defer close(chaosDone)
			rep.Chaos, chaosErr = chaosRun(o, start, bodies[0], stallLine)
		}()
	}
	for i := 0; ; i++ {
		next := start.Add(time.Duration(float64(i) * float64(interval)))
		now := time.Now()
		if now.After(stop) {
			break
		}
		if next.After(now) {
			time.Sleep(next.Sub(now))
		}
		tl.sent.Add(1)
		select {
		case sem <- struct{}{}:
			ti := -1
			if pickTenant != nil {
				ti = pickTenant()
			}
			wg.Add(1)
			go func(i, ti int) {
				defer wg.Done()
				defer func() { <-sem }()
				if streamEvery > 0 && i%streamEvery == streamEvery-1 {
					var block []byte
					if ti >= 0 {
						block = biasBlocks[ti]
					}
					oneStream(client, o, tl, utts[i%len(utts)], block)
				} else {
					body := bodies[i%len(bodies)]
					if ti >= 0 {
						body = withBias(body, biasBlocks[ti])
					}
					oneBatch(client, o, tl, body)
				}
			}(i, ti)
		default:
			tl.record("client_overrun", 0, false)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if chaosDone != nil {
		<-chaosDone
	}

	tl.mu.Lock()
	rep.Outcomes = tl.outcomes
	rep.Degraded = tl.degraded
	rep.LatencyMs = latencyReport{
		P50: percentileMs(tl.latencies, 0.50),
		P95: percentileMs(tl.latencies, 0.95),
		P99: percentileMs(tl.latencies, 0.99),
		Max: percentileMs(tl.latencies, 1.0),
	}
	tl.mu.Unlock()
	rep.Sent = tl.sent.Load()
	rep.Duration = elapsed.String()
	if elapsed > 0 {
		rep.AchievedRPS = float64(rep.Sent) / elapsed.Seconds()
	}
	var biasScrapeErr error
	if o.tenants > 0 {
		rep.Bias, biasScrapeErr = scrapeBias(client, o)
	}

	// The CI contract: 5xx, transport failures and unbounded p99 are run
	// failures, structured rejections (shed/deadline/unavailable) are not.
	// Under -chaos the victim has its own contract: it must be quarantined
	// (else the drill proved nothing), answer only structured errors while
	// sick, and come back ready after the heal.
	switch {
	case chaosErr != nil:
		rep.FailureReason = fmt.Sprintf("chaos injection failed: %v", chaosErr)
	case o.chaos && rep.Chaos.VictimOutcomes["5xx"]+rep.Chaos.VictimOutcomes["transport_error"] > 0:
		rep.FailureReason = fmt.Sprintf("victim model answered %d 5xx and %d transport errors",
			rep.Chaos.VictimOutcomes["5xx"], rep.Chaos.VictimOutcomes["transport_error"])
	case o.chaos && !rep.Chaos.SawQuarantine:
		rep.FailureReason = "victim was never quarantined — chaos had no effect (is the server running with a short -health-interval?)"
	case o.chaos && !rep.Chaos.Recovered:
		rep.FailureReason = "victim did not return to ready after the bundle healed"
	case rep.Outcomes["5xx"] > 0:
		rep.FailureReason = fmt.Sprintf("%d 5xx responses", rep.Outcomes["5xx"])
	case rep.Outcomes["transport_error"] > 0:
		rep.FailureReason = fmt.Sprintf("%d transport errors", rep.Outcomes["transport_error"])
	case rep.Outcomes["bad_body"] > 0 || rep.Outcomes["stream_truncated"] > 0 || rep.Outcomes["stream_error"] > 0:
		rep.FailureReason = "malformed accepted responses"
	case o.maxP99 > 0 && rep.LatencyMs.P99 > float64(o.maxP99)/float64(time.Millisecond):
		rep.FailureReason = fmt.Sprintf("accepted p99 %.1fms exceeds bound %v", rep.LatencyMs.P99, o.maxP99)
	case rep.Outcomes["ok"] == 0:
		rep.FailureReason = "no request succeeded"
	case biasScrapeErr != nil:
		rep.FailureReason = fmt.Sprintf("could not scrape bias metrics: %v", biasScrapeErr)
	case o.tenants > 0 && len(rep.Bias.TenantHitRate) == 0:
		rep.FailureReason = "no per-tenant bias cache series in /metrics — tenant blocks were not honored"
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	if rep.FailureReason != "" {
		return fmt.Errorf("run failed: %s", rep.FailureReason)
	}
	return nil
}
