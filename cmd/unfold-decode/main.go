// Command unfold-decode runs end-to-end speech recognition on a synthetic
// benchmark task: it synthesizes test utterances, scores them, decodes with
// on-the-fly WFST composition (software decoder or the UNFOLD hardware
// simulator) and reports transcripts plus the word error rate.
//
// Examples:
//
//	unfold-decode -task voxforge
//	unfold-decode -task tedlium -accel -n 10
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/decoder"
	"repro/internal/metrics"
	"repro/internal/task"

	unfold "repro"
)

func specFor(name string, scale float64) (task.Spec, error) {
	switch strings.ToLower(name) {
	case "tedlium":
		return unfold.KaldiTedlium(scale), nil
	case "librispeech":
		return unfold.KaldiLibrispeech(scale), nil
	case "voxforge":
		return unfold.KaldiVoxforge(scale), nil
	case "eesen":
		return unfold.EesenTedlium(scale), nil
	default:
		return task.Spec{}, fmt.Errorf("unknown task %q (tedlium, librispeech, voxforge, eesen)", name)
	}
}

func main() {
	taskName := flag.String("task", "voxforge", "task: tedlium, librispeech, voxforge, eesen")
	scale := flag.Float64("scale", 1.0, "task scale factor")
	n := flag.Int("n", 5, "utterances to decode")
	useAccel := flag.Bool("accel", false, "decode on the UNFOLD hardware simulator")
	nbest := flag.Int("nbest", 0, "print the top-N rescored hypotheses (two-pass decoder)")
	stream := flag.Bool("stream", false, "decode frame-at-a-time, printing partial hypotheses")
	parallel := flag.Int("parallel", 0, "decode on a worker pool with this many workers (0 = sequential)")
	timeout := flag.Duration("timeout", 0, "overall decode deadline (0 = none); on expiry partial results are reported")
	rescue := flag.Int("rescue", 0, "search-failure rescue: retry a dead frame up to this many times with a doubled beam")
	verbose := flag.Bool("v", false, "print per-utterance transcripts")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	spec, err := specFor(*taskName, *scale)
	if err != nil {
		fail(err)
	}
	spec.TestUtterances = *n

	fmt.Printf("building task %s (vocab %d, %d phones)...\n", spec.Name, spec.Vocab, spec.Phones)
	sys, err := unfold.NewSystem(spec)
	if err != nil {
		fail(err)
	}
	fp := sys.Footprint()
	fmt.Printf("datasets: AM %.2f KB, LM %.2f KB (compressed: %.2f KB + %.2f KB)\n",
		float64(fp.AMBytes)/1024, float64(fp.LMBytes)/1024,
		float64(fp.AMCompressedBytes)/1024, float64(fp.LMCompressedBytes)/1024)

	var wer metrics.WERAccumulator
	var frames int
	start := time.Now()

	switch {
	case *parallel > 0:
		p, err := sys.NewDecodePool(unfold.PoolConfig{
			Workers: *parallel,
			Decoder: decoder.Config{PreemptivePruning: true, RescueWidenings: *rescue},
		})
		if err != nil {
			fail(err)
		}
		var scores [][][]float32
		for _, u := range sys.TestSet() {
			scores = append(scores, sys.Task.Scorer.ScoreUtterance(u.Frames))
			frames += len(u.Frames)
		}
		batch, err := p.DecodeContext(ctx, scores)
		if batch == nil {
			fail(err)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "unfold-decode: batch ended early: %v\n", err)
		}
		for i, u := range sys.TestSet() {
			if e := batch.Errors[i]; e != nil {
				fmt.Fprintf(os.Stderr, "unfold-decode: %v\n", e)
			}
			if batch.Results[i] == nil {
				continue
			}
			report(*verbose, sys, i, u.Words, batch.Results[i].Words)
			wer.Add(u.Words, batch.Results[i].Words)
		}
		fmt.Printf("\npool (%d workers): %s\n", p.Workers(), batch.Throughput)
		fmt.Printf("%s\n", batch.Cache)
		if !batch.Search.Healthy() {
			fmt.Printf("%s\n", batch.Search)
		}
	case *nbest > 0:
		tp, err := decoder.NewTwoPass(sys.Task.AM.G, sys.Task.LMGraph.G, decoder.Config{}, 2**nbest)
		if err != nil {
			fail(err)
		}
		var refs [][]int32
		var lists [][][]int32
		for i, u := range sys.TestSet() {
			scores := sys.Task.Scorer.ScoreUtterance(u.Frames)
			frames += len(u.Frames)
			list := tp.NBest(scores, *nbest)
			fmt.Printf("utt %02d ref: %s\n", i, strings.Join(sys.Words(u.Words), " "))
			var hyps [][]int32
			for rank, r := range list {
				fmt.Printf("   #%d (%.2f): %s\n", rank+1, r.Cost, strings.Join(sys.Words(r.Words), " "))
				hyps = append(hyps, r.Words)
			}
			wer.Add(u.Words, list[0].Words)
			refs = append(refs, u.Words)
			lists = append(lists, hyps)
		}
		fmt.Printf("\noracle WER over the %d-best lists: %.2f%%\n", *nbest, metrics.OracleWER(refs, lists))
	case *stream:
		dec, err := sys.NewDecoder(decoder.Config{PreemptivePruning: true})
		if err != nil {
			fail(err)
		}
		for i, u := range sys.TestSet() {
			scores := sys.Task.Scorer.ScoreUtterance(u.Frames)
			frames += len(u.Frames)
			st := dec.NewStream()
			for f, frame := range scores {
				if err := st.Push(frame); err != nil {
					fail(err)
				}
				if *verbose && f%50 == 49 {
					fmt.Printf("utt %02d @%4.1fs partial: %s\n", i, float64(f)/100,
						strings.Join(sys.Words(st.Partial()), " "))
				}
			}
			res := st.Finish()
			report(*verbose, sys, i, u.Words, res.Words)
			wer.Add(u.Words, res.Words)
		}
	case *useAccel:
		acc, err := sys.NewAccelerator(decoder.Config{PreemptivePruning: true})
		if err != nil {
			fail(err)
		}
		var scores [][][]float32
		for _, u := range sys.TestSet() {
			scores = append(scores, sys.Task.Scorer.ScoreUtterance(u.Frames))
			frames += len(u.Frames)
		}
		res, per := acc.DecodeAll(scores)
		for i, u := range sys.TestSet() {
			report(*verbose, sys, i, u.Words, per[i].Words)
			wer.Add(u.Words, per[i].Words)
		}
		fmt.Printf("\nsimulated accelerator: %d cycles, %.3f ms (%.0fx real time), %.1f mW, %.2f GB/s DRAM\n",
			res.Cycles, res.Seconds*1e3,
			metrics.AudioDuration(frames).Seconds()/res.Seconds,
			res.AvgPowerW*1e3, res.BandwidthGBs())
	default:
		dec, err := sys.NewDecoder(decoder.Config{PreemptivePruning: true, RescueWidenings: *rescue})
		if err != nil {
			fail(err)
		}
		var health metrics.Search
		for i, u := range sys.TestSet() {
			res, err := dec.DecodeContext(ctx, sys.Task.Scorer.ScoreUtterance(u.Frames))
			if err != nil {
				fmt.Fprintf(os.Stderr, "unfold-decode: utterance %d cut short: %v\n", i, err)
			}
			frames += res.Stats.Frames
			health.Add(metrics.Search{Rescues: res.Stats.Rescues, Failures: res.Stats.SearchFailures})
			report(*verbose, sys, i, u.Words, res.Words)
			wer.Add(u.Words, res.Words)
			if err != nil {
				break
			}
		}
		if !health.Healthy() {
			fmt.Printf("%s\n", health)
		}
	}

	wall := time.Since(start)
	audio := metrics.AudioDuration(frames)
	fmt.Printf("\n%s\n", wer.String())
	fmt.Printf("decoded %.1f s of audio in %v (software wall time, %.0fx real time)\n",
		audio.Seconds(), wall.Round(time.Millisecond), metrics.RTF(audio, wall))
}

func report(verbose bool, sys *unfold.System, i int, ref, hyp []int32) {
	if !verbose {
		return
	}
	fmt.Printf("utt %02d ref: %s\n", i, strings.Join(sys.Words(ref), " "))
	fmt.Printf("       hyp: %s\n", strings.Join(sys.Words(hyp), " "))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "unfold-decode:", err)
	os.Exit(1)
}
