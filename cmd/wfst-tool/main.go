// Command wfst-tool builds, composes, compresses and inspects the WFSTs of
// a benchmark task, can save/load them in the binary serialization format,
// and converts/inspects v3 flat bundles (docs/MODEL_STORE.md).
//
// Examples:
//
//	wfst-tool -task voxforge -op stats
//	wfst-tool -task voxforge -op compose
//	wfst-tool -task tedlium -op compress
//	wfst-tool -task voxforge -op save -dir /tmp/vox && wfst-tool -op load -dir /tmp/vox
//	wfst-tool -task voxforge -op pack -out /models/vox.ufb3
//	wfst-tool -op convert -dir /models/vox-v2 -out /models/vox.ufb3
//	wfst-tool -op info -bundle /models/vox.ufb3
//	wfst-tool -op verify -bundle /models/vox.ufb3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/compress"
	"repro/internal/flatstore"
	"repro/internal/task"
	"repro/internal/wfst"

	unfold "repro"
)

func main() {
	taskName := flag.String("task", "voxforge", "task: tedlium, librispeech, voxforge, eesen")
	scale := flag.Float64("scale", 1.0, "task scale factor")
	op := flag.String("op", "stats", "operation: stats, compose, compress, save, load, pack, convert, info, verify")
	dir := flag.String("dir", ".", "directory for save/load and convert source")
	out := flag.String("out", "", "output bundle path for pack/convert (e.g. model.ufb3)")
	bundle := flag.String("bundle", "", "v3 bundle path for info/verify")
	flag.Parse()

	switch *op {
	case "load":
		if err := load(*dir); err != nil {
			fail(err)
		}
		return
	case "convert":
		if *out == "" {
			fail(fmt.Errorf("convert needs -out <bundle path>"))
		}
		if err := unfold.ConvertBundle(*dir, *out); err != nil {
			fail(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			fail(err)
		}
		fmt.Printf("converted %s -> %s (%s)\n", *dir, *out, wfst.FormatBytes(st.Size()))
		return
	case "info":
		if err := info(*bundle); err != nil {
			fail(err)
		}
		return
	case "verify":
		if err := verify(*bundle); err != nil {
			fail(err)
		}
		return
	case "pack":
		// Build the full system for a task and write it straight to a v3
		// flat bundle — the one-command way to produce a serveable model
		// file (the chaos smoke in CI packs its victim this way).
		if *out == "" {
			fail(fmt.Errorf("pack needs -out <bundle path>"))
		}
		spec, err := specFor(*taskName, *scale)
		if err != nil {
			fail(err)
		}
		sys, err := unfold.NewSystem(spec)
		if err != nil {
			fail(err)
		}
		if err := sys.SaveFlat(*out); err != nil {
			fail(err)
		}
		st, err := os.Stat(*out)
		if err != nil {
			fail(err)
		}
		fmt.Printf("packed task %s -> %s (%s)\n", spec.Name, *out, wfst.FormatBytes(st.Size()))
		return
	}

	spec, err := specFor(*taskName, *scale)
	if err != nil {
		fail(err)
	}
	spec.TestUtterances = 1
	tk, err := task.Build(spec)
	if err != nil {
		fail(err)
	}

	switch *op {
	case "stats":
		fmt.Printf("AM: %s\n", wfst.ComputeStats(tk.AM.G))
		fmt.Printf("LM: %s\n", wfst.ComputeStats(tk.LMGraph.G))
	case "compose":
		fmt.Println("composing AM o LM offline (the blow-up UNFOLD avoids)...")
		g, err := wfst.Compose(tk.AM.G, tk.LMGraph.G, wfst.ComposeOptions{MaxStates: 30_000_000})
		if err != nil {
			fail(err)
		}
		fmt.Printf("composed: %s\n", wfst.ComputeStats(g))
		ratio := float64(g.SizeBytes()) / float64(tk.AM.G.SizeBytes()+tk.LMGraph.G.SizeBytes())
		fmt.Printf("blow-up vs components: %.1fx\n", ratio)
	case "compress":
		qa, err := compress.TrainQuantizer(compress.CollectWeights(tk.AM.G), 0)
		if err != nil {
			fail(err)
		}
		cam, err := compress.EncodeAM(tk.AM.G, qa)
		if err != nil {
			fail(err)
		}
		ql, err := compress.TrainQuantizer(compress.CollectWeights(tk.LMGraph.G), 0)
		if err != nil {
			fail(err)
		}
		clm, err := compress.EncodeLM(tk.LMGraph, ql)
		if err != nil {
			fail(err)
		}
		fmt.Printf("AM: %s -> %s (%.1fx; %d short / %d normal arcs)\n",
			wfst.FormatBytes(tk.AM.G.SizeBytes()), wfst.FormatBytes(cam.SizeBytes()),
			float64(tk.AM.G.SizeBytes())/float64(cam.SizeBytes()), cam.ShortArcs, cam.NormalArcs)
		fmt.Printf("LM: %s -> %s (%.1fx)\n",
			wfst.FormatBytes(tk.LMGraph.G.SizeBytes()), wfst.FormatBytes(clm.SizeBytes()),
			float64(tk.LMGraph.G.SizeBytes())/float64(clm.SizeBytes()))
	case "save":
		if err := save(*dir, tk); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s and %s\n", filepath.Join(*dir, "am.wfst"), filepath.Join(*dir, "lm.wfst"))
	default:
		fail(fmt.Errorf("unknown op %q", *op))
	}
}

func save(dir string, tk *task.Task) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, item := range []struct {
		name string
		g    *wfst.WFST
	}{{"am.wfst", tk.AM.G}, {"lm.wfst", tk.LMGraph.G}} {
		f, err := os.Create(filepath.Join(dir, item.name))
		if err != nil {
			return err
		}
		if err := wfst.Write(item.g, f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func load(dir string) error {
	for _, name := range []string{"am.wfst", "lm.wfst"} {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		g, err := wfst.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("%s: %s\n", name, wfst.ComputeStats(g))
	}
	return nil
}

// info prints the section table of a v3 bundle plus the metadata a fast
// (O(1), header-checksum-only) load sees. It never parses the payload
// sections, so it is safe to point at large models.
func info(path string) error {
	if path == "" {
		return fmt.Errorf("info needs -bundle <path>")
	}
	b, err := flatstore.Open(path, flatstore.Options{})
	if err != nil {
		return err
	}
	defer b.Close()
	fmt.Printf("%s: v%d flat bundle, %s, mapped=%v\n",
		path, flatstore.Version, wfst.FormatBytes(b.SizeBytes()), b.Mapped())
	for _, kind := range b.Kinds() {
		fmt.Printf("  %-10s %10s\n", kind, wfst.FormatBytes(b.SectionLen(kind)))
	}
	start := time.Now()
	rec, err := unfold.LoadRecognizerFast(path)
	if err != nil {
		return err
	}
	defer rec.Close()
	fmt.Printf("task %s, loaded in %s\n", rec.TaskName, time.Since(start).Round(time.Microsecond))
	fmt.Printf("AM: %s\n", wfst.ComputeStats(rec.AMGraph))
	fmt.Printf("LM: %s\n", wfst.ComputeStats(rec.LMGraph))
	return nil
}

// verify runs the full-verification load path: every section checksum is
// recomputed and the graphs are structurally validated, the same checks a
// server does on `POST /v1/models` with verify=true.
func verify(path string) error {
	if path == "" {
		return fmt.Errorf("verify needs -bundle <path>")
	}
	start := time.Now()
	rec, err := unfold.LoadRecognizer(path)
	if err != nil {
		return err
	}
	defer rec.Close()
	fmt.Printf("%s: OK — all section checksums and graph invariants verified in %s\n",
		path, time.Since(start).Round(time.Microsecond))
	fmt.Printf("task %s, %s resident, AM %d states, LM %d states\n",
		rec.TaskName, wfst.FormatBytes(rec.ResidentBytes()),
		rec.AMGraph.NumStates(), rec.LMGraph.NumStates())
	return nil
}

func specFor(name string, scale float64) (task.Spec, error) {
	switch strings.ToLower(name) {
	case "tedlium":
		return unfold.KaldiTedlium(scale), nil
	case "librispeech":
		return unfold.KaldiLibrispeech(scale), nil
	case "voxforge":
		return unfold.KaldiVoxforge(scale), nil
	case "eesen":
		return unfold.EesenTedlium(scale), nil
	default:
		return task.Spec{}, fmt.Errorf("unknown task %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "wfst-tool:", err)
	os.Exit(1)
}
