package unfold

import (
	"testing"

	"repro/internal/decoder"
	"repro/internal/task"
)

func smallSpec() Spec {
	return task.Spec{
		Name:           "facade-test",
		Vocab:          25,
		Phones:         10,
		TrainSentences: 150,
		TestUtterances: 3,
		Seed:           9,
	}
}

func TestNewSystemAndRecognize(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range sys.TestSet() {
		hyp, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if len(hyp) == 0 {
			t.Error("empty hypothesis")
		}
		words := sys.Words(hyp)
		if len(words) != len(hyp) {
			t.Error("Words length mismatch")
		}
		for _, w := range words {
			if w == "" || w == "<eps>" {
				t.Errorf("bad surface form %q", w)
			}
		}
	}
	if hyp, err := sys.Recognize(nil); err != nil || hyp != nil {
		t.Error("empty frames should recognize to nothing")
	}
}

func TestFootprintOrdering(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	fp := sys.Footprint()
	if fp.CompressedBytes() >= fp.OnTheFlyBytes() {
		t.Errorf("compression did not shrink: %d >= %d", fp.CompressedBytes(), fp.OnTheFlyBytes())
	}
	if fp.ComposedBytes != 0 {
		t.Error("composed size should be 0 before Composed() is built")
	}
	if _, err := sys.Composed(); err != nil {
		t.Fatal(err)
	}
	fp = sys.Footprint()
	if fp.ComposedBytes <= fp.OnTheFlyBytes() {
		t.Errorf("composed %d not larger than components %d — no blow-up?",
			fp.ComposedBytes, fp.OnTheFlyBytes())
	}
}

func TestComposedIsCached(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, err := sys.Composed()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.Composed()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Composed() rebuilt instead of caching")
	}
}

func TestAcceleratorConstructors(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	u, err := sys.NewAccelerator(decoder.Config{PreemptivePruning: true})
	if err != nil {
		t.Fatal(err)
	}
	scores := [][][]float32{sys.Task.Scorer.ScoreUtterance(sys.TestSet()[0].Frames)}
	r, per := u.DecodeAll(scores)
	if r.Cycles == 0 || len(per) != 1 {
		t.Error("accelerator produced no work")
	}
	fc, err := sys.NewBaselineAccelerator(decoder.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := fc.DecodeAll(scores)
	if rb.Cycles == 0 {
		t.Error("baseline produced no work")
	}
}

func TestEvaluateWER(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	wer, err := sys.EvaluateWER()
	if err != nil {
		t.Fatal(err)
	}
	if wer < 0 || wer > 100 {
		t.Errorf("WER %v out of range", wer)
	}
}

func TestPredefinedConstructorsExposed(t *testing.T) {
	for _, spec := range []Spec{
		KaldiTedlium(0.2), KaldiLibrispeech(0.2), KaldiVoxforge(0.2), EesenTedlium(0.2),
	} {
		if spec.Name == "" || spec.Vocab == 0 {
			t.Errorf("bad predefined spec %+v", spec)
		}
	}
}

func TestRecognizeTimed(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	u := sys.TestSet()[0]
	words, ends, err := sys.RecognizeTimed(u.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(words) != len(ends) {
		t.Fatalf("%d words, %d end times", len(words), len(ends))
	}
	audio := float64(len(u.Frames)) * 0.010
	for i, e := range ends {
		if e < 0 || e > audio {
			t.Errorf("word %d ends at %.2fs outside %.2fs audio", i, e, audio)
		}
	}
}

// TestRecognizeBatchMatchesSequential: the parallel façade must return the
// same transcripts as per-utterance Recognize, in input order, with sane
// throughput aggregates.
func TestRecognizeBatchMatchesSequential(t *testing.T) {
	sys, err := NewSystem(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	var frames [][][]float32
	var want [][]int32
	for _, u := range sys.TestSet() {
		frames = append(frames, u.Frames)
		hyp, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, hyp)
	}
	got, tp, err := sys.RecognizeBatch(frames, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("utt %d: batch %v vs sequential %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("utt %d word %d: batch %v vs sequential %v", i, j, got[i], want[i])
			}
		}
	}
	if tp.Utterances != len(frames) || tp.Frames == 0 || tp.Wall <= 0 {
		t.Errorf("bad throughput aggregates: %+v", tp)
	}
}
