package unfold

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/task"
)

// -update-golden regenerates testdata/golden-v2 and its companion input/
// transcript files. Run it after an intentional format or model change:
//
//	go test -run TestGoldenFormatCompat -update-golden .
var updateGolden = flag.Bool("update-golden", false, "regenerate the golden v2 bundle and transcript")

// goldenSpec pins the checked-in golden bundle. Everything downstream —
// the v2 directory, its SHA-256 manifest, the input frames, the expected
// transcript — is a pure function of this spec, so the bundle regenerates
// reproducibly.
var goldenSpec = task.Spec{
	Name:           "golden",
	Vocab:          24,
	Phones:         12,
	TrainSentences: 200,
	TestUtterances: 3,
	LMMinCount:     2,
	Seed:           7,
}

const (
	goldenV2Dir      = "testdata/golden-v2"
	goldenInputFile  = "testdata/golden-input.json"
	goldenTranscript = "testdata/golden-transcript.txt"
)

func regenerateGolden(t *testing.T) {
	t.Helper()
	sys, err := NewSystem(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(goldenV2Dir); err != nil {
		t.Fatal(err)
	}
	if err := sys.Save(goldenV2Dir); err != nil {
		t.Fatal(err)
	}
	var frames [][][]float32
	var lines []string
	for _, u := range sys.TestSet() {
		frames = append(frames, u.Frames)
		words, err := sys.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, strings.Join(sys.Words(words), " "))
	}
	data, err := json.MarshalIndent(frames, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenInputFile, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenTranscript, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("regenerated %s, %s, %s", goldenV2Dir, goldenInputFile, goldenTranscript)
}

// decodeGolden runs the golden input through a loaded recognizer and
// renders one transcript line per utterance.
func decodeGolden(t *testing.T, rec *Recognizer, frames [][][]float32) []string {
	t.Helper()
	var lines []string
	for i, f := range frames {
		words, err := rec.Recognize(f)
		if err != nil {
			t.Fatalf("utterance %d: %v", i, err)
		}
		lines = append(lines, strings.Join(rec.Words(words), " "))
	}
	return lines
}

// TestGoldenFormatCompat is the cross-version compatibility gate: the
// checked-in v2 directory bundle must keep loading, converting it to a v3
// flat bundle must keep working, and all three load paths (v2 parse, v3
// verified, v3 fast) must produce byte-identical recognition output that
// matches the checked-in transcript. A failure here means an on-disk
// format change broke bundles that are already deployed — see
// docs/MODEL_STORE.md for the forward-compatibility rules before touching
// the writer.
func TestGoldenFormatCompat(t *testing.T) {
	if *updateGolden {
		regenerateGolden(t)
	}

	raw, err := os.ReadFile(goldenInputFile)
	if err != nil {
		t.Fatalf("reading golden input (regenerate with -update-golden): %v", err)
	}
	var frames [][][]float32
	if err := json.Unmarshal(raw, &frames); err != nil {
		t.Fatal(err)
	}
	wantRaw, err := os.ReadFile(goldenTranscript)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Split(strings.TrimRight(string(wantRaw), "\n"), "\n")

	// Path 1: the golden v2 directory, full verification.
	recV2, err := LoadRecognizer(goldenV2Dir)
	if err != nil {
		t.Fatalf("golden v2 bundle no longer loads: %v", err)
	}
	gotV2 := decodeGolden(t, recV2, frames)

	// Path 2: v2 -> v3 conversion, then the verified flat load.
	v3path := filepath.Join(t.TempDir(), "golden.ufb3")
	if err := ConvertBundle(goldenV2Dir, v3path); err != nil {
		t.Fatalf("golden v2 bundle no longer converts: %v", err)
	}
	recV3, err := LoadRecognizer(v3path)
	if err != nil {
		t.Fatalf("converted v3 bundle does not load: %v", err)
	}
	defer recV3.Close()
	gotV3 := decodeGolden(t, recV3, frames)

	// Path 3: the O(1) fast load of the same v3 bundle.
	recFast, err := LoadRecognizerFast(v3path)
	if err != nil {
		t.Fatal(err)
	}
	defer recFast.Close()
	gotFast := decodeGolden(t, recFast, frames)

	for i := range want {
		if gotV2[i] != want[i] {
			t.Errorf("utt %d: v2 decode drifted from golden transcript:\n got %q\nwant %q", i, gotV2[i], want[i])
		}
		if gotV3[i] != gotV2[i] {
			t.Errorf("utt %d: v3 decode differs from v2:\n v3 %q\n v2 %q", i, gotV3[i], gotV2[i])
		}
		if gotFast[i] != gotV2[i] {
			t.Errorf("utt %d: v3 fast-load decode differs from v2:\n fast %q\n   v2 %q", i, gotFast[i], gotV2[i])
		}
	}
	if len(gotV2) != len(want) {
		t.Fatalf("decoded %d utterances, golden transcript has %d", len(gotV2), len(want))
	}
}
