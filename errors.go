package unfold

import (
	"fmt"

	"repro/internal/pool"
)

// Error taxonomy of the public API (see docs/ROBUSTNESS.md):
//
//   - *DecodeError — a per-utterance decode failure (recovered worker
//     panic, cancellation, rejected input). Batch decodes isolate these per
//     utterance instead of failing the batch.
//   - *BundleError — a model bundle that failed checksum, parse, or
//     structural validation in LoadRecognizer (defined in persist.go).
//   - *DimensionError — caller frames whose feature dimension does not
//     match the acoustic model; always detected up front, never deep in a
//     scorer.
//
// All three support errors.As; DecodeError and BundleError also expose
// their underlying cause via Unwrap.

// DecodeError is a per-utterance decode failure surfaced by Recognize,
// RecognizeBatch, and DecodePool. Its Stage is one of the Stage*
// constants.
type DecodeError = pool.DecodeError

// Decode stages recorded in DecodeError.Stage.
const (
	StageFeatures = pool.StageFeatures
	StageScore    = pool.StageScore
	StageSearch   = pool.StageSearch
	StageCanceled = pool.StageCanceled
)

// DimensionError reports a feature-dimension mismatch between the caller's
// frames and the acoustic model. Frame is the first offending frame index.
type DimensionError struct {
	Frame int
	Got   int
	Want  int
}

// Error implements the error interface.
func (e *DimensionError) Error() string {
	return fmt.Sprintf("unfold: frame %d has %d features, acoustic model expects %d", e.Frame, e.Got, e.Want)
}

// validateFrames rejects feature matrices whose rows do not match the
// acoustic model's dimension. Without this check a mismatched frame either
// panics deep inside a scorer or silently produces garbage scores.
func validateFrames(frames [][]float32, want int) error {
	for f, row := range frames {
		if len(row) != want {
			return &DimensionError{Frame: f, Got: len(row), Want: want}
		}
	}
	return nil
}
