package unfold

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/flatstore"
)

// saveFlatFixture writes the shared test system as a v3 bundle.
func saveFlatFixture(t testing.TB) (string, *bundleFixture) {
	t.Helper()
	fx := getBundle(t)
	path := filepath.Join(t.TempDir(), "model.ufb3")
	if err := fx.sys.SaveFlat(path); err != nil {
		t.Fatal(err)
	}
	return path, fx
}

// decodeAll runs the recognizer over the fixture's test set.
func decodeAll(t *testing.T, fx *bundleFixture, rec *Recognizer) [][]int32 {
	t.Helper()
	out := make([][]int32, len(fx.sys.TestSet()))
	for i, u := range fx.sys.TestSet() {
		hyp, err := rec.Recognize(u.Frames)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = hyp
	}
	return out
}

// TestSaveFlatLoadRoundTrip is the v3 differential gate: recognition output
// from the flat bundle — on both the fully-verified and the O(1) fast load
// path — must be byte-identical to the v2 pointer-graph path.
func TestSaveFlatLoadRoundTrip(t *testing.T) {
	path, fx := saveFlatFixture(t)

	v2rec, err := LoadRecognizer(fx.dir)
	if err != nil {
		t.Fatal(err)
	}
	want := decodeAll(t, fx, v2rec)

	for _, tc := range []struct {
		name string
		load func() (*Recognizer, error)
	}{
		{"full-verify", func() (*Recognizer, error) { return LoadRecognizer(path) }},
		{"fast", func() (*Recognizer, error) { return LoadRecognizerFast(path) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec, err := tc.load()
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if !reflect.DeepEqual(decodeAll(t, fx, rec), want) {
				t.Fatal("v3 decode differs from the v2 pointer-graph path")
			}
			if rec.ResidentBytes() <= 0 {
				t.Error("non-positive ResidentBytes")
			}
			if rec.Lex.V() != fx.sys.Task.Lex.V() {
				t.Error("vocabulary changed across formats")
			}
			if rec.Model != nil {
				t.Error("v3 load should not materialize the LM model")
			}
		})
	}
}

func TestLoadRecognizerFastIsMapped(t *testing.T) {
	path, _ := saveFlatFixture(t)
	rec, err := LoadRecognizerFast(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	// On unix the trusted path must actually map the bundle, not copy it.
	if !rec.Mapped() {
		t.Skip("mmap unavailable on this platform; fallback path exercised elsewhere")
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ResidentBytes() != st.Size() {
		t.Errorf("ResidentBytes %d != bundle size %d", rec.ResidentBytes(), st.Size())
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal("second Close errored")
	}
}

// TestConvertBundle checks the v2→v3 conversion path end to end: the
// converted bundle must decode byte-identically to its v2 source and carry
// parseable packed sections.
func TestConvertBundle(t *testing.T) {
	fx := getBundle(t)
	dst := filepath.Join(t.TempDir(), "converted.ufb3")
	if err := ConvertBundle(fx.dir, dst); err != nil {
		t.Fatal(err)
	}
	v2rec, err := LoadRecognizer(fx.dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := LoadRecognizer(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if !reflect.DeepEqual(decodeAll(t, fx, rec), decodeAll(t, fx, v2rec)) {
		t.Fatal("converted bundle decodes differently from its v2 source")
	}
}

func TestPackedSectionsParse(t *testing.T) {
	path, fx := saveFlatFixture(t)
	rec, err := LoadRecognizerFast(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	pam, err := rec.PackedAM()
	if err != nil {
		t.Fatal(err)
	}
	plm, err := rec.PackedLM()
	if err != nil {
		t.Fatal(err)
	}
	if pam.NumStates() != fx.sys.AM.NumStates() || pam.NumArcs() != fx.sys.AM.NumArcs() {
		t.Error("packed AM shape differs from the system's")
	}
	if plm.NumStates() != fx.sys.LM.NumStates() || plm.V != fx.sys.LM.V {
		t.Error("packed LM shape differs from the system's")
	}
	// Second call returns the cached parse.
	again, err := rec.PackedAM()
	if err != nil || again != pam {
		t.Error("PackedAM not cached")
	}
}

// TestFlatLoadSurvivesCorruption is the v3 half of the bundle-hardening
// contract: seeded corruptions (bit flips, truncations, zero runs, appended
// garbage via faultinject) plus a systematic truncation sweep must yield a
// typed *BundleError or a working recognizer — never a panic, never an
// untyped error.
func TestFlatLoadSurvivesCorruption(t *testing.T) {
	path, _ := saveFlatFixture(t)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	check := func(p string) {
		t.Helper()
		rec, err := LoadRecognizer(p)
		if err != nil {
			var be *BundleError
			if !errors.As(err, &be) {
				t.Fatalf("untyped error: %v", err)
			}
			return
		}
		rec.Close()
	}

	var loadedOrRejected int
	for seed := int64(1); seed <= 60; seed++ {
		p := filepath.Join(t.TempDir(), "corrupt.ufb3")
		if err := os.WriteFile(p, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := faultinject.CorruptFile(p, seed); err != nil {
			t.Fatal(err)
		}
		check(p)
		loadedOrRejected++
	}
	// Systematic truncations across the whole file, including mid-header,
	// mid-table, and mid-section cuts.
	step := len(pristine)/64 + 1
	for n := 0; n < len(pristine); n += step {
		p := filepath.Join(t.TempDir(), "trunc.ufb3")
		if err := os.WriteFile(p, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		check(p)
	}
	// Every single-bit flip within the header+table region must be caught
	// by the header checksum (or the magic/version fields it covers).
	for bit := 0; bit < flatstore.HeaderSize*8; bit++ {
		bad := append([]byte(nil), pristine...)
		bad[bit/8] ^= 1 << (bit % 8)
		p := filepath.Join(t.TempDir(), "flip.ufb3")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := LoadRecognizer(p)
		if err == nil {
			rec.Close()
			t.Fatalf("header bit flip %d accepted by the full-verify loader", bit)
		}
		var be *BundleError
		if !errors.As(err, &be) {
			t.Fatalf("untyped error on header bit flip %d: %v", bit, err)
		}
	}
	if loadedOrRejected == 0 {
		t.Fatal("corruption loop did not run")
	}
}

// TestFlatLoadErrors covers the coarse failure modes with exact reasons.
func TestFlatLoadErrors(t *testing.T) {
	if _, err := LoadRecognizer(filepath.Join(t.TempDir(), "missing.ufb3")); err == nil {
		t.Error("expected error for a missing bundle")
	}
	p := filepath.Join(t.TempDir(), "not-a-bundle.ufb3")
	if err := os.WriteFile(p, []byte("certainly not a flat bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadRecognizer(p)
	var be *BundleError
	if !errors.As(err, &be) {
		t.Fatalf("want *BundleError, got %v", err)
	}
	if be.Reason != "version" && be.Reason != "parse" && be.Reason != "structure" {
		t.Errorf("unexpected reason %q for junk file", be.Reason)
	}
	if _, err := LoadRecognizerFast(p); err == nil {
		t.Error("fast loader accepted junk")
	}
}
